// Package datatype implements an MPI-style derived datatype engine: the
// constructors of MPI-2 (contiguous, vector, indexed, hindexed, struct,
// resized, subarray), flattening into offset/length pairs, streaming cursors
// over tiled datatypes with instance skipping, and a wire codec for
// exchanging flattened datatypes between processes.
//
// A Type describes a pattern of bytes within a span called its extent. A
// file view or a file realm tiles the pattern: instance i occupies
// [disp+i*Extent(), disp+(i+1)*Extent()). Size() is the number of actual
// data bytes per instance; Extent()-Size() is "gap" space.
//
// The package distinguishes two representations that the paper's Section
// 5.3 compares:
//
//   - the flattened datatype: the D offset/length pairs of ONE instance
//     (what the new implementation communicates), and
//   - the flattened access: all M = count*D pairs of an entire access
//     (what the original ROMIO implementation communicates).
package datatype

import (
	"fmt"
	"sort"
	"strings"
)

// Seg is one contiguous byte range: offsets are relative to the start of a
// datatype instance (or absolute file offsets, where documented).
type Seg struct {
	Off int64
	Len int64
}

// End returns the first offset past the segment.
func (s Seg) End() int64 { return s.Off + s.Len }

// SplitSegs cuts a segment list at n data bytes: head covers the first n
// bytes of the concatenated data stream, tail the remainder. A segment
// straddling the cut is split; the input is never mutated. n <= 0 yields
// (nil, segs); n >= the total yields (segs, nil).
func SplitSegs(segs []Seg, n int64) (head, tail []Seg) {
	if n <= 0 {
		return nil, segs
	}
	var acc int64
	for i, s := range segs {
		if acc+s.Len < n {
			acc += s.Len
			continue
		}
		if acc+s.Len == n {
			return segs[:i+1], segs[i+1:]
		}
		// Straddler: split without touching the shared backing array.
		cut := n - acc
		head = append(append(head, segs[:i]...), Seg{Off: s.Off, Len: cut})
		tail = append(tail, Seg{Off: s.Off + cut, Len: s.Len - cut})
		tail = append(tail, segs[i+1:]...)
		return head, tail
	}
	return segs, nil
}

// Type is an immutable derived datatype.
type Type interface {
	// Size is the number of data bytes in one instance.
	Size() int64
	// Extent is the span one instance occupies when tiled.
	Extent() int64
	// NumSegs is D: the number of contiguous segments per instance after
	// flattening and coalescing.
	NumSegs() int64
	// Flatten returns the canonical flattened form of one instance:
	// sorted, disjoint, coalesced segments relative to instance start.
	// The returned slice must not be modified.
	Flatten() []Seg
	// String returns a human-readable constructor-style description.
	String() string
}

// base carries the memoized flattened representation shared by all concrete
// types.
type base struct {
	segs   []Seg
	size   int64
	extent int64
	desc   string
	node   Node // constructor tree (zero Kind when built from raw segments)
}

func (b *base) Size() int64    { return b.size }
func (b *base) Extent() int64  { return b.extent }
func (b *base) NumSegs() int64 { return int64(len(b.segs)) }
func (b *base) Flatten() []Seg { return b.segs }
func (b *base) String() string { return b.desc }

// normalize sorts, validates, and coalesces raw segments. Zero-length
// segments are dropped. Overlapping segments are an error (MPI forbids
// overlapping writes; we reject the type eagerly to catch workload bugs).
func normalize(raw []Seg) ([]Seg, int64, error) {
	segs := make([]Seg, 0, len(raw))
	for _, s := range raw {
		if s.Len < 0 {
			return nil, 0, fmt.Errorf("datatype: negative segment length %d", s.Len)
		}
		if s.Off < 0 {
			return nil, 0, fmt.Errorf("datatype: negative segment offset %d", s.Off)
		}
		if s.Len == 0 {
			continue
		}
		segs = append(segs, s)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Off < segs[j].Off })
	out := segs[:0]
	var size int64
	for _, s := range segs {
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if s.Off < prev.End() {
				return nil, 0, fmt.Errorf("datatype: overlapping segments [%d,%d) and [%d,%d)",
					prev.Off, prev.End(), s.Off, s.End())
			}
			if s.Off == prev.End() {
				prev.Len += s.Len
				size += s.Len
				continue
			}
		}
		out = append(out, s)
		size += s.Len
	}
	return out, size, nil
}

func newBase(raw []Seg, extent int64, desc string) (*base, error) {
	segs, size, err := normalize(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", desc, err)
	}
	if extent < 0 {
		return nil, fmt.Errorf("%s: negative extent %d", desc, extent)
	}
	if n := len(segs); n > 0 {
		if segs[n-1].End() > extent {
			return nil, fmt.Errorf("%s: segments span %d bytes, beyond extent %d (tiled instances would overlap)",
				desc, segs[n-1].End(), extent)
		}
	}
	return &base{segs: segs, size: size, extent: extent, desc: desc}, nil
}

// Bytes returns an elementary datatype of n contiguous bytes.
func Bytes(n int64) Type {
	if n < 0 {
		panic(fmt.Sprintf("datatype: Bytes(%d): negative size", n))
	}
	var segs []Seg
	if n > 0 {
		segs = []Seg{{0, n}}
	}
	return &base{segs: segs, size: n, extent: n,
		desc: fmt.Sprintf("bytes(%d)", n),
		node: Node{Kind: KindBytes, A: n}}
}

// Contiguous replicates inner count times back to back
// (MPI_Type_contiguous).
func Contiguous(count int64, inner Type) (Type, error) {
	if count < 0 {
		return nil, fmt.Errorf("datatype: contiguous: negative count %d", count)
	}
	ext := inner.Extent()
	raw := make([]Seg, 0, count*inner.NumSegs())
	for i := int64(0); i < count; i++ {
		for _, s := range inner.Flatten() {
			raw = append(raw, Seg{s.Off + i*ext, s.Len})
		}
	}
	b, err := newBase(raw, count*ext, fmt.Sprintf("contig(%d, %s)", count, inner))
	if err != nil {
		return nil, err
	}
	b.node = Node{Kind: KindContig, A: count, Children: []Node{Tree(inner)}}
	return b, nil
}

// Vector is MPI_Type_vector with byte-granular stride semantics of
// MPI_Type_hvector: count blocks of blocklen inner instances, block i
// starting at i*stride bytes. stride must be >= blocklen*inner.Extent() (no
// overlap) and the extent is (count-1)*stride + blocklen*inner.Extent().
func Vector(count, blocklen int64, stride int64, inner Type) (Type, error) {
	if count < 0 || blocklen < 0 {
		return nil, fmt.Errorf("datatype: vector: negative count %d or blocklen %d", count, blocklen)
	}
	iext := inner.Extent()
	raw := make([]Seg, 0, count*blocklen*inner.NumSegs())
	for i := int64(0); i < count; i++ {
		blockStart := i * stride
		for j := int64(0); j < blocklen; j++ {
			for _, s := range inner.Flatten() {
				raw = append(raw, Seg{blockStart + j*iext + s.Off, s.Len})
			}
		}
	}
	var ext int64
	if count > 0 {
		ext = (count-1)*stride + blocklen*iext
	}
	b, err := newBase(raw, ext, fmt.Sprintf("vector(%d, %d, %d, %s)", count, blocklen, stride, inner))
	if err != nil {
		return nil, err
	}
	b.node = Node{Kind: KindVector, A: count, B: blocklen, C: stride, Children: []Node{Tree(inner)}}
	return b, nil
}

// Indexed is MPI_Type_indexed with displacements and block lengths in units
// of the inner type's extent.
func Indexed(blocklens, displs []int64, inner Type) (Type, error) {
	if len(blocklens) != len(displs) {
		return nil, fmt.Errorf("datatype: indexed: %d blocklens vs %d displs", len(blocklens), len(displs))
	}
	iext := inner.Extent()
	hd := make([]int64, len(displs))
	hb := make([]int64, len(blocklens))
	for i := range displs {
		hd[i] = displs[i] * iext
		hb[i] = blocklens[i]
	}
	return hIndexed(hb, hd, inner, fmt.Sprintf("indexed(%d blocks, %s)", len(blocklens), inner))
}

// HIndexed is MPI_Type_create_hindexed: displacements in bytes, block
// lengths in units of inner instances.
func HIndexed(blocklens, byteDispls []int64, inner Type) (Type, error) {
	return hIndexed(blocklens, byteDispls, inner,
		fmt.Sprintf("hindexed(%d blocks, %s)", len(blocklens), inner))
}

func hIndexed(blocklens, byteDispls []int64, inner Type, desc string) (Type, error) {
	if len(blocklens) != len(byteDispls) {
		return nil, fmt.Errorf("datatype: hindexed: %d blocklens vs %d displs", len(blocklens), len(byteDispls))
	}
	iext := inner.Extent()
	var raw []Seg
	ext := int64(0)
	for i := range blocklens {
		if blocklens[i] < 0 {
			return nil, fmt.Errorf("datatype: hindexed: negative blocklen %d", blocklens[i])
		}
		for j := int64(0); j < blocklens[i]; j++ {
			for _, s := range inner.Flatten() {
				raw = append(raw, Seg{byteDispls[i] + j*iext + s.Off, s.Len})
			}
		}
		if end := byteDispls[i] + blocklens[i]*iext; end > ext {
			ext = end
		}
	}
	b, err := newBase(raw, ext, desc)
	if err != nil {
		return nil, err
	}
	b.node = Node{
		Kind:     KindHIndexed,
		Lens:     append([]int64(nil), blocklens...),
		Displs:   append([]int64(nil), byteDispls...),
		Children: []Node{Tree(inner)},
	}
	return b, nil
}

// Struct is MPI_Type_create_struct: heterogeneous blocks at byte
// displacements.
func Struct(blocklens []int64, byteDispls []int64, types []Type) (Type, error) {
	if len(blocklens) != len(byteDispls) || len(blocklens) != len(types) {
		return nil, fmt.Errorf("datatype: struct: mismatched lengths (%d, %d, %d)",
			len(blocklens), len(byteDispls), len(types))
	}
	var raw []Seg
	ext := int64(0)
	names := make([]string, len(types))
	for i := range types {
		if blocklens[i] < 0 {
			return nil, fmt.Errorf("datatype: struct: negative blocklen %d", blocklens[i])
		}
		iext := types[i].Extent()
		for j := int64(0); j < blocklens[i]; j++ {
			for _, s := range types[i].Flatten() {
				raw = append(raw, Seg{byteDispls[i] + j*iext + s.Off, s.Len})
			}
		}
		if end := byteDispls[i] + blocklens[i]*iext; end > ext {
			ext = end
		}
		names[i] = types[i].String()
	}
	b, err := newBase(raw, ext, fmt.Sprintf("struct(%d blocks: %s)", len(types), strings.Join(names, ", ")))
	if err != nil {
		return nil, err
	}
	children := make([]Node, len(types))
	for i, ty := range types {
		children[i] = Tree(ty)
	}
	b.node = Node{
		Kind:     KindStruct,
		Lens:     append([]int64(nil), blocklens...),
		Displs:   append([]int64(nil), byteDispls...),
		Children: children,
	}
	return b, nil
}

// Resized is MPI_Type_create_resized: the same data pattern with an
// overridden extent (commonly used to shrink or pad the tiling period).
// The new extent must still contain every segment.
func Resized(inner Type, extent int64) (Type, error) {
	segs := inner.Flatten()
	if n := len(segs); n > 0 && segs[n-1].End() > extent {
		return nil, fmt.Errorf("datatype: resized(%s, %d): segments end at %d beyond new extent",
			inner, extent, segs[n-1].End())
	}
	if extent < 0 {
		return nil, fmt.Errorf("datatype: resized: negative extent %d", extent)
	}
	return &base{
		segs:   segs,
		size:   inner.Size(),
		extent: extent,
		desc:   fmt.Sprintf("resized(%s, %d)", inner, extent),
		node:   Node{Kind: KindResized, A: extent, Children: []Node{Tree(inner)}},
	}, nil
}

// Subarray is MPI_Type_create_subarray for a row-major n-dimensional array
// of elemSize-byte elements: it selects the block starting at `starts` of
// shape `subsizes` out of an array of shape `sizes`.
func Subarray(sizes, subsizes, starts []int64, elemSize int64) (Type, error) {
	n := len(sizes)
	if len(subsizes) != n || len(starts) != n {
		return nil, fmt.Errorf("datatype: subarray: dimension mismatch")
	}
	if n == 0 {
		return nil, fmt.Errorf("datatype: subarray: zero dimensions")
	}
	if elemSize <= 0 {
		return nil, fmt.Errorf("datatype: subarray: elemSize must be positive, got %d", elemSize)
	}
	for d := 0; d < n; d++ {
		if sizes[d] <= 0 || subsizes[d] < 0 || starts[d] < 0 || starts[d]+subsizes[d] > sizes[d] {
			return nil, fmt.Errorf("datatype: subarray: dim %d out of range (size=%d sub=%d start=%d)",
				d, sizes[d], subsizes[d], starts[d])
		}
	}
	// Row-major strides in bytes.
	strides := make([]int64, n)
	strides[n-1] = elemSize
	for d := n - 2; d >= 0; d-- {
		strides[d] = strides[d+1] * sizes[d+1]
	}
	rowLen := subsizes[n-1] * elemSize
	var raw []Seg
	var walk func(d int, off int64)
	walk = func(d int, off int64) {
		if d == n-1 {
			raw = append(raw, Seg{off + starts[d]*elemSize, rowLen})
			return
		}
		for i := int64(0); i < subsizes[d]; i++ {
			walk(d+1, off+(starts[d]+i)*strides[d])
		}
	}
	walk(0, 0)
	b, err := newBase(raw, strides[0]*sizes[0],
		fmt.Sprintf("subarray(%dd, elem=%d)", n, elemSize))
	if err != nil {
		return nil, err
	}
	b.node = Node{
		Kind:   KindSubarray,
		A:      elemSize,
		Lens:   append([]int64(nil), sizes...),
		Displs: append([]int64(nil), subsizes...),
		Aux:    append([]int64(nil), starts...),
	}
	return b, nil
}

// FromSegs builds a datatype directly from raw segments (relative to 0)
// with the given extent; extent <= 0 means "tight" (end of last segment).
func FromSegs(raw []Seg, extent int64) (Type, error) {
	segs, size, err := normalize(raw)
	if err != nil {
		return nil, err
	}
	if extent <= 0 {
		if len(segs) > 0 {
			extent = segs[len(segs)-1].End()
		} else {
			extent = 0
		}
	}
	if len(segs) > 0 && segs[len(segs)-1].End() > extent {
		return nil, fmt.Errorf("datatype: FromSegs: extent %d smaller than span %d",
			extent, segs[len(segs)-1].End())
	}
	return &base{segs: segs, size: size, extent: extent,
		desc: fmt.Sprintf("segs(%d)", len(segs))}, nil
}

// Must panics if err is non-nil; it is a convenience for tests and
// examples building statically known-valid datatypes.
func Must(t Type, err error) Type {
	if err != nil {
		panic(err)
	}
	return t
}
