package datatype

import "sort"

// Stream merging for node-local pre-aggregation: a leader rank combines the
// flattened accesses of its co-resident ranks into one offset-sorted,
// coalesced access whose packed stream it exchanges with the aggregators on
// everyone's behalf. The plan below is the bidirectional byte map between
// each participant's own packed stream and the merged stream — the leader
// gathers member payloads through it on writes and scatters aggregator
// payloads back through it on reads.
//
// The merged access is the deduplicated union of the participants' byte
// sets: a byte two members both touch appears once in the merged stream.
// For reads that is a small bonus (shared bytes cross the network once);
// for writes, overlapping concurrent accesses are undefined behavior under
// MPI semantics, and the plan resolves them deterministically (the copy
// order below makes the highest (Part, SrcPos) pair win).

// MergeItem maps one contiguous run of a participant's packed data stream
// onto the merged stream. Off is the absolute file offset of the run,
// SrcPos its position in the participant's own stream, and DstPos (filled
// by BuildMergePlan) its position in the merged stream.
type MergeItem struct {
	Off    int64
	Len    int64
	Part   int
	SrcPos int64
	DstPos int64
}

// AppendFlatRuns appends one MergeItem per contiguous run of f's access
// (absolute offsets, limit respected, stream order) tagged with the given
// participant index, and returns the extended slice.
func AppendFlatRuns(items []MergeItem, f Flat, part int) []MergeItem {
	c := f.Cursor()
	for {
		seg, sp, ok := c.Next(1 << 62)
		if !ok {
			break
		}
		items = append(items, MergeItem{Off: seg.Off, Len: seg.Len, Part: part, SrcPos: sp})
	}
	return items
}

// AppendSegRuns appends one MergeItem per segment of an already-flattened
// absolute access list (stream order = list order), tagged with the given
// participant index, and returns the extended slice.
func AppendSegRuns(items []MergeItem, segs []Seg, part int) []MergeItem {
	var pos int64
	for _, s := range segs {
		if s.Len > 0 {
			items = append(items, MergeItem{Off: s.Off, Len: s.Len, Part: part, SrcPos: pos})
		}
		pos += s.Len
	}
	return items
}

// BuildMergePlan sorts the items by file offset (ties by participant, then
// source position), computes the deduplicated union of their byte ranges as
// an offset-sorted, coalesced segment list appended to merged[:0], and
// fills each item's DstPos with the run's position in the merged stream.
// Every item maps to one contiguous destination run: items are sorted, so
// a run overlapping existing coverage overlaps only the coverage tail, and
// any extension appends contiguously right after it. Returns the updated
// items, the merged segments, and the merged stream's total byte count.
func BuildMergePlan(items []MergeItem, merged []Seg) ([]MergeItem, []Seg, int64) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Off != items[j].Off {
			return items[i].Off < items[j].Off
		}
		if items[i].Part != items[j].Part {
			return items[i].Part < items[j].Part
		}
		return items[i].SrcPos < items[j].SrcPos
	})
	merged = merged[:0]
	var total int64
	for i := range items {
		it := &items[i]
		if n := len(merged); n > 0 && it.Off <= merged[n-1].End() {
			last := &merged[n-1]
			it.DstPos = (total - last.Len) + (it.Off - last.Off)
			if ext := it.End() - last.End(); ext > 0 {
				last.Len += ext
				total += ext
			}
		} else {
			it.DstPos = total
			merged = append(merged, Seg{Off: it.Off, Len: it.Len})
			total += it.Len
		}
	}
	return items, merged, total
}

// End returns the first offset past the item's run.
func (m MergeItem) End() int64 { return m.Off + m.Len }
