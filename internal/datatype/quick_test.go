package datatype

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genType draws a random valid datatype with bounded size.
func genType(rng *rand.Rand) Type {
	switch rng.Intn(5) {
	case 0:
		return Bytes(int64(1 + rng.Intn(64)))
	case 1:
		return Must(Contiguous(int64(1+rng.Intn(5)), Bytes(int64(1+rng.Intn(16)))))
	case 2:
		bl := int64(1 + rng.Intn(3))
		elem := int64(1 + rng.Intn(8))
		stride := bl*elem + int64(rng.Intn(16))
		return Must(Vector(int64(1+rng.Intn(5)), bl, stride, Bytes(elem)))
	case 3:
		n := 1 + rng.Intn(5)
		lens := make([]int64, n)
		displs := make([]int64, n)
		off := int64(rng.Intn(4))
		for i := 0; i < n; i++ {
			lens[i] = int64(1 + rng.Intn(3))
			displs[i] = off
			off += lens[i]*4 + int64(rng.Intn(12))
		}
		return Must(HIndexed(lens, displs, Bytes(4)))
	default:
		inner := Must(Vector(int64(1+rng.Intn(3)), 1, int64(8+rng.Intn(8)), Bytes(int64(1+rng.Intn(8)))))
		return Must(Resized(inner, inner.Extent()+int64(rng.Intn(32))))
	}
}

// PropFlattenInvariants: the flattened form is sorted, disjoint, coalesced,
// within the extent, and its lengths sum to Size().
func TestQuickFlattenInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := genType(rng)
		segs := ty.Flatten()
		var sum int64
		for i, s := range segs {
			if s.Len <= 0 || s.Off < 0 || s.End() > ty.Extent() {
				return false
			}
			if i > 0 && s.Off <= segs[i-1].End() {
				return false // unsorted, overlapping, or uncoalesced
			}
			sum += s.Len
		}
		return sum == ty.Size()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// PropCursorWalkCoversAccess: draining a cursor yields exactly count*Size
// data bytes in strictly increasing file order, matching Segments().
func TestQuickCursorWalkMatchesSegments(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := genType(rng)
		count := int64(1 + rng.Intn(4))
		disp := int64(rng.Intn(32))
		want, _ := Segments(ty, disp, count)

		c := NewCursor(ty, disp, count)
		var got []Seg
		for {
			s, _, ok := c.Next(int64(1 + rng.Intn(40)))
			if !ok {
				break
			}
			if n := len(got); n > 0 && got[n-1].End() == s.Off {
				got[n-1].Len += s.Len
			} else {
				got = append(got, s)
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// PropSeekEquivalence: SeekOffset agrees with a byte-at-a-time linear scan.
func TestQuickSeekOffsetEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := genType(rng)
		count := int64(1 + rng.Intn(4))
		disp := int64(rng.Intn(16))
		limit := disp + count*ty.Extent() + 8
		target := int64(rng.Intn(int(limit)))

		ref := NewCursor(ty, disp, count)
		var want int64 = -1
		for {
			s, _, ok := ref.Next(1)
			if !ok {
				break
			}
			if s.Off >= target {
				want = s.Off
				break
			}
		}
		c := NewCursor(ty, disp, count)
		ok := c.SeekOffset(target)
		if want < 0 {
			return !ok
		}
		return ok && c.Offset() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// PropSeekStreamRoundTrip: SeekStream(p) then StreamPos() == p for every
// p < total data, and the file offset maps back through SeekOffset.
func TestQuickSeekStreamRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := genType(rng)
		count := int64(1 + rng.Intn(4))
		total := count * ty.Size()
		p := int64(rng.Intn(int(total)))

		c := NewCursor(ty, 0, count)
		if !c.SeekStream(p) {
			return false
		}
		if c.StreamPos() != p {
			return false
		}
		off := c.Offset()
		d := NewCursor(ty, 0, count)
		if !d.SeekOffset(off) {
			return false
		}
		return d.Offset() == off && d.StreamPos() == p
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// PropPackUnpack: Unpack(Pack(buf)) restores exactly the data bytes.
func TestQuickPackUnpackRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := genType(rng)
		count := int64(1 + rng.Intn(4))
		buf := make([]byte, count*ty.Extent()+int64(rng.Intn(8)))
		rng.Read(buf)
		stream, err := Pack(buf, ty, 0, count)
		if err != nil {
			return false
		}
		if int64(len(stream)) != count*ty.Size() {
			return false
		}
		out := make([]byte, len(buf))
		if err := Unpack(stream, out, ty, 0, count); err != nil {
			return false
		}
		back, err := Pack(out, ty, 0, count)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(stream, back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// PropCodecRoundTrip: DecodeFlat(Encode(f)) == f for random types and
// tilings, including unbounded counts and limits.
func TestQuickCodecRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := genType(rng)
		count := int64(rng.Intn(6)) - 1 // occasionally -1 (unbounded)
		f := FlatOf(ty, int64(rng.Intn(100)), count)
		if rng.Intn(2) == 0 {
			f.Limit = int64(rng.Intn(200))
		}
		dec, err := DecodeFlat(f.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(f, dec)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// PropLimitClipping: a limited cursor exposes exactly min(limit, total)
// data bytes.
func TestQuickCursorLimit(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := genType(rng)
		count := int64(1 + rng.Intn(4))
		total := count * ty.Size()
		limit := int64(rng.Intn(int(total) + 10))
		c := NewCursor(ty, 0, count)
		c.SetLimit(limit)
		var seen int64
		for {
			s, _, ok := c.Next(1 << 30)
			if !ok {
				break
			}
			seen += s.Len
		}
		want := limit
		if total < want {
			want = total
		}
		return seen == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
