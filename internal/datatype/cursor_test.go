package datatype

import (
	"math/rand"
	"reflect"
	"testing"
)

// collect drains a cursor into absolute segments, with per-call max run.
func collect(c *Cursor, max int64) []Seg {
	var out []Seg
	for {
		s, _, ok := c.Next(max)
		if !ok {
			return out
		}
		if n := len(out); n > 0 && out[n-1].End() == s.Off {
			out[n-1].Len += s.Len
		} else {
			out = append(out, s)
		}
	}
}

func TestCursorBasicWalk(t *testing.T) {
	v := Must(Vector(2, 1, 16, Bytes(8))) // segs {0,8},{16,8}, extent 24
	c := NewCursor(v, 100, 2)
	got := collect(c, 1<<30)
	want := segs(100, 8, 116, 16, 140, 8)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("walk = %v, want %v", got, want)
	}
	if !c.Done() {
		t.Fatal("cursor not done after drain")
	}
	if c.Offset() != -1 {
		t.Fatalf("Offset after done = %d, want -1", c.Offset())
	}
}

func TestCursorSmallMaxChunks(t *testing.T) {
	v := Must(Vector(3, 1, 10, Bytes(6)))
	a := collect(NewCursor(v, 0, 4), 1<<30)
	b := collect(NewCursor(v, 0, 4), 1) // byte at a time, coalesced by collect
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("chunked walk differs: %v vs %v", a, b)
	}
}

func TestCursorStreamPos(t *testing.T) {
	v := Must(Vector(2, 1, 16, Bytes(8))) // 16 data bytes per instance
	c := NewCursor(v, 0, 3)
	seen := map[int64]int64{} // streamPos -> fileOff
	for {
		before := c.StreamPos()
		s, sp, ok := c.Next(5)
		if !ok {
			break
		}
		if sp != before {
			t.Fatalf("streamPos mismatch: Next says %d, StreamPos said %d", sp, before)
		}
		seen[sp] = s.Off
	}
	if c.StreamPos() != 48 {
		t.Fatalf("final StreamPos = %d, want 48", c.StreamPos())
	}
	// Spot-check the stream->file mapping: data byte 16 begins instance 1.
	if off, ok := seen[16]; !ok || off != 24 {
		t.Fatalf("stream byte 16 at file offset %d (ok=%v), want 24", off, ok)
	}
}

func TestCursorSeekOffset(t *testing.T) {
	v := Must(Vector(2, 1, 16, Bytes(8))) // extent 24, data at [0,8) and [16,24) per instance
	for _, tc := range []struct {
		seek    int64
		wantOff int64
	}{
		{0, 0},
		{3, 3},  // mid-segment
		{8, 16}, // gap -> next segment
		{15, 16},
		{23, 23},
		{24, 24}, // start of instance 1
		{30, 30}, // hmm: 24+6 inside first seg of instance 1
		{47, 47},
		{48, 48}, // instance 2
	} {
		c := NewCursor(v, 0, 100)
		if !c.SeekOffset(tc.seek) {
			t.Fatalf("seek %d: exhausted", tc.seek)
		}
		if got := c.Offset(); got != tc.wantOff {
			t.Fatalf("seek %d: offset = %d, want %d", tc.seek, got, tc.wantOff)
		}
	}
}

func TestCursorSeekIntoGapOfLastInstance(t *testing.T) {
	v := Must(Vector(2, 1, 16, Bytes(8)))
	c := NewCursor(v, 0, 1)
	if c.SeekOffset(24) {
		t.Fatalf("seek past end succeeded at offset %d", c.Offset())
	}
	if !c.Done() {
		t.Fatal("cursor should be done")
	}
}

func TestCursorSeekBackwardIsNoop(t *testing.T) {
	c := NewCursor(Bytes(8), 0, 10)
	c.SeekOffset(40)
	off := c.Offset()
	c.SeekOffset(5)
	if c.Offset() != off {
		t.Fatalf("backward seek moved cursor from %d to %d", off, c.Offset())
	}
}

func TestCursorUnboundedTiling(t *testing.T) {
	// Persistent-file-realm style: 8-byte block every 32 bytes, forever.
	r := Must(Resized(Bytes(8), 32))
	c := NewCursor(r, 4, -1)
	if !c.SeekOffset(1_000_000) {
		t.Fatal("unbounded cursor exhausted")
	}
	// Instance k at 4+32k; 1_000_000-4 = 999_996; 999_996/32 = 31249.875
	// -> instance 31249 at 4+999968=999972, data [999972,999980) ends
	// before 1_000_000, so next data is instance 31250 at 1000004.
	if got := c.Offset(); got != 1000004 {
		t.Fatalf("offset = %d, want 1000004", got)
	}
}

func TestCursorInstanceSkipIsCheap(t *testing.T) {
	// Succinct: 1 segment per instance, many instances.
	succinct := Must(Resized(Bytes(64), 192))
	c := NewCursor(succinct, 0, 100000)
	c.SeekOffset(192 * 90000)
	if w := c.Work(); w > 8 {
		t.Fatalf("succinct skip work = %d, want O(1)", w)
	}

	// Enumerated: the same access as one instance with 100000 segments.
	var raw []Seg
	for i := int64(0); i < 100000; i++ {
		raw = append(raw, Seg{i * 192, 64})
	}
	enum, err := FromSegs(raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	ce := NewCursor(enum, 0, 1)
	ce.SeekOffset(192 * 90000)
	if w := ce.Work(); w < 80000 {
		t.Fatalf("enumerated scan work = %d, want ~90000 (linear)", w)
	}
}

func TestCursorSeekStream(t *testing.T) {
	v := Must(Vector(2, 1, 16, Bytes(8))) // 16 data bytes, extent 24
	c := NewCursor(v, 0, 4)
	for _, tc := range []struct {
		p       int64
		wantOff int64
	}{
		{0, 0},
		{7, 7},
		{8, 16},
		{15, 23},
		{16, 24},
		{40, 24*2 + 16}, // byte 40 = instance 2, second segment start
	} {
		if !c.SeekStream(tc.p) {
			t.Fatalf("SeekStream(%d) exhausted", tc.p)
		}
		if got := c.Offset(); got != tc.wantOff {
			t.Fatalf("SeekStream(%d): offset = %d, want %d", tc.p, got, tc.wantOff)
		}
		if got := c.StreamPos(); got != tc.p {
			t.Fatalf("SeekStream(%d): StreamPos = %d", tc.p, got)
		}
	}
	if c.SeekStream(64) {
		t.Fatal("SeekStream past end succeeded")
	}
}

func TestCursorCloneIndependence(t *testing.T) {
	c := NewCursor(Bytes(8), 0, 10)
	c.Next(5)
	d := c.Clone()
	d.Next(20)
	if c.Offset() == d.Offset() {
		t.Fatal("clone shares position with original")
	}
	if d.Work() == c.Work() && c.Work() != 0 {
		t.Fatal("clone did not reset work counter")
	}
}

func TestCursorEmptyType(t *testing.T) {
	c := NewCursor(Bytes(0), 0, 5)
	if !c.Done() {
		t.Fatal("empty type cursor not done")
	}
	if _, _, ok := c.Next(10); ok {
		t.Fatal("Next on empty type succeeded")
	}
	if c.SeekOffset(0) {
		t.Fatal("SeekOffset on empty type succeeded")
	}
}

// TestCursorSeekMatchesLinearScan cross-checks SeekOffset against a naive
// linear walk on randomized datatypes.
func TestCursorSeekMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		// Random sparse type.
		nseg := 1 + rng.Intn(6)
		var raw []Seg
		off := int64(rng.Intn(5))
		for i := 0; i < nseg; i++ {
			l := int64(1 + rng.Intn(9))
			raw = append(raw, Seg{off, l})
			off += l + int64(rng.Intn(7))
		}
		ext := off + int64(rng.Intn(5))
		ty, err := FromSegs(raw, ext)
		if err != nil {
			t.Fatal(err)
		}
		count := int64(1 + rng.Intn(5))
		disp := int64(rng.Intn(10))
		target := int64(rng.Intn(int(ext*count + disp + 10)))

		// Reference: linear walk.
		ref := NewCursor(ty, disp, count)
		var want int64 = -1
		for {
			s, _, ok := ref.Next(1)
			if !ok {
				break
			}
			if s.Off >= target {
				want = s.Off
				break
			}
		}

		c := NewCursor(ty, disp, count)
		ok := c.SeekOffset(target)
		if want == -1 {
			if ok {
				t.Fatalf("trial %d: seek(%d) found %d, want exhausted (type %v disp %d count %d)",
					trial, target, c.Offset(), raw, disp, count)
			}
			continue
		}
		if !ok || c.Offset() != want {
			t.Fatalf("trial %d: seek(%d) = %d (ok=%v), want %d", trial, target, c.Offset(), ok, want)
		}
	}
}
