package datatype

import (
	"bytes"
	"reflect"
	"testing"
)

func TestFlatRoundTrip(t *testing.T) {
	v := Must(Vector(3, 2, 40, Bytes(8)))
	f := FlatOf(v, 1234, 77)
	enc := f.Encode()
	if int64(len(enc)) != f.WireBytes() {
		t.Fatalf("encoded %d bytes, WireBytes says %d", len(enc), f.WireBytes())
	}
	dec, err := DecodeFlat(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, dec) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", f, dec)
	}
}

func TestFlatUnboundedCount(t *testing.T) {
	f := FlatOf(Bytes(8), 0, -1)
	dec, err := DecodeFlat(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Count != -1 {
		t.Fatalf("count = %d, want -1", dec.Count)
	}
	c := dec.Cursor()
	if !c.SeekOffset(1 << 20) {
		t.Fatal("unbounded decoded cursor exhausted")
	}
}

func TestDecodeFlatErrors(t *testing.T) {
	if _, err := DecodeFlat(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
	f := FlatOf(Bytes(8), 0, 1)
	enc := f.Encode()
	if _, err := DecodeFlat(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
	if _, err := DecodeFlat(append(enc, 0)); err == nil {
		t.Fatal("oversized buffer accepted")
	}
}

func TestFlatCursorMatchesTypeCursor(t *testing.T) {
	v := Must(Vector(4, 1, 24, Bytes(8)))
	want := collect(NewCursor(v, 64, 5), 1<<30)
	f, err := DecodeFlat(FlatOf(v, 64, 5).Encode())
	if err != nil {
		t.Fatal(err)
	}
	got := collect(f.Cursor(), 1<<30)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded cursor walk = %v, want %v", got, want)
	}
}

func TestSegsRoundTrip(t *testing.T) {
	in := segs(0, 8, 100, 16, 4096, 1)
	out, err := DecodeSegs(EncodeSegs(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("segs round trip: %v -> %v", in, out)
	}
	empty, err := DecodeSegs(EncodeSegs(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty segs round trip: %v, %v", empty, err)
	}
}

func TestDecodeSegsErrors(t *testing.T) {
	if _, err := DecodeSegs([]byte{1}); err == nil {
		t.Fatal("short buffer accepted")
	}
	enc := EncodeSegs(segs(0, 8))
	if _, err := DecodeSegs(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	v := Must(Vector(3, 1, 10, Bytes(4))) // data at 0-4,10-14,20-24; extent 24
	buf := make([]byte, 2*24+16)
	for i := range buf {
		buf[i] = byte(i)
	}
	stream, err := Pack(buf, v, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != 24 {
		t.Fatalf("stream len = %d, want 24", len(stream))
	}
	// First data byte should be buf[2].
	if stream[0] != buf[2] {
		t.Fatalf("stream[0] = %d, want %d", stream[0], buf[2])
	}
	out := make([]byte, len(buf))
	if err := Unpack(stream, out, v, 2, 2); err != nil {
		t.Fatal(err)
	}
	// Unpacked bytes must match the original at data positions and be
	// zero in gaps.
	cur := NewCursor(v, 2, 2)
	dataAt := map[int64]bool{}
	for {
		s, _, ok := cur.Next(1)
		if !ok {
			break
		}
		dataAt[s.Off] = true
	}
	for i := range out {
		if dataAt[int64(i)] {
			if out[i] != buf[i] {
				t.Fatalf("data byte %d: got %d want %d", i, out[i], buf[i])
			}
		} else if out[i] != 0 {
			t.Fatalf("gap byte %d modified to %d", i, out[i])
		}
	}
}

func TestPackErrors(t *testing.T) {
	if _, err := Pack(make([]byte, 4), Bytes(8), 0, 1); err == nil {
		t.Fatal("short buffer accepted by Pack")
	}
	if _, err := Pack(make([]byte, 64), Bytes(8), 0, -1); err == nil {
		t.Fatal("unbounded count accepted by Pack")
	}
	if err := Unpack(make([]byte, 9), make([]byte, 64), Bytes(8), 0, 1); err == nil {
		t.Fatal("oversized stream accepted by Unpack")
	}
	if err := Unpack(make([]byte, 4), make([]byte, 4), Bytes(8), 0, 1); err == nil {
		t.Fatal("short dest accepted by Unpack")
	}
}

func TestPackZeroCount(t *testing.T) {
	stream, err := Pack(nil, Bytes(8), 0, 0)
	if err != nil || len(stream) != 0 {
		t.Fatalf("zero-count pack: %v, %v", stream, err)
	}
}

func TestEncodeIsCompactForSuccinctTypes(t *testing.T) {
	// The paper's point: a succinct filetype encodes in O(D), the
	// flattened access in O(M).
	succinct := Must(Resized(Bytes(64), 192))
	flat := FlatOf(succinct, 0, 4096)
	access, _ := Segments(succinct, 0, 4096)
	flatBytes := len(flat.Encode())
	accessBytes := len(EncodeSegs(access))
	if flatBytes*100 > accessBytes {
		t.Fatalf("succinct encoding not compact: flat=%dB access=%dB", flatBytes, accessBytes)
	}
	if !bytes.Equal(flat.Encode(), flat.Encode()) {
		t.Fatal("encode not deterministic")
	}
}
