package datatype

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func TestAppendSegRuns(t *testing.T) {
	segs := []Seg{{Off: 10, Len: 4}, {Off: 20, Len: 0}, {Off: 30, Len: 6}}
	items := AppendSegRuns(nil, segs, 2)
	want := []MergeItem{
		{Off: 10, Len: 4, Part: 2, SrcPos: 0},
		{Off: 30, Len: 6, Part: 2, SrcPos: 4},
	}
	if !reflect.DeepEqual(items, want) {
		t.Fatalf("AppendSegRuns = %+v, want %+v", items, want)
	}
}

func TestAppendFlatRuns(t *testing.T) {
	// Two tiles of a 3-byte region strided by 10, displaced by 100.
	ft := Must(Resized(Bytes(3), 10))
	fl := FlatOf(ft, 100, 2)
	items := AppendFlatRuns(nil, fl, 1)
	want := []MergeItem{
		{Off: 100, Len: 3, Part: 1, SrcPos: 0},
		{Off: 110, Len: 3, Part: 1, SrcPos: 3},
	}
	if !reflect.DeepEqual(items, want) {
		t.Fatalf("AppendFlatRuns = %+v, want %+v", items, want)
	}
}

// TestBuildMergePlanShapes pins the union geometry: disjoint, adjacent,
// fully contained, partially overlapping, and duplicated runs.
func TestBuildMergePlanShapes(t *testing.T) {
	cases := []struct {
		name  string
		items []MergeItem
		segs  []Seg
		total int64
	}{
		{"disjoint",
			[]MergeItem{{Off: 0, Len: 4, Part: 0}, {Off: 10, Len: 4, Part: 1}},
			[]Seg{{0, 4}, {10, 4}}, 8},
		{"adjacent-coalesce",
			[]MergeItem{{Off: 0, Len: 4, Part: 0}, {Off: 4, Len: 4, Part: 1}},
			[]Seg{{0, 8}}, 8},
		{"contained",
			[]MergeItem{{Off: 0, Len: 10, Part: 0}, {Off: 2, Len: 3, Part: 1}},
			[]Seg{{0, 10}}, 10},
		{"partial-overlap",
			[]MergeItem{{Off: 0, Len: 6, Part: 0}, {Off: 4, Len: 6, Part: 1}},
			[]Seg{{0, 10}}, 10},
		{"duplicate",
			[]MergeItem{{Off: 5, Len: 5, Part: 0}, {Off: 5, Len: 5, Part: 1}},
			[]Seg{{5, 5}}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			items, merged, total := BuildMergePlan(tc.items, nil)
			if !reflect.DeepEqual(merged, tc.segs) || total != tc.total {
				t.Fatalf("merged = %v (total %d), want %v (total %d)", merged, total, tc.segs, tc.total)
			}
			// Every item's destination run must land exactly where its file
			// range sits inside the merged stream.
			for _, it := range items {
				var pos int64
				for _, s := range merged {
					if it.Off >= s.Off && it.End() <= s.End() {
						want := pos + (it.Off - s.Off)
						if it.DstPos != want {
							t.Fatalf("item %+v: DstPos %d, want %d", it, it.DstPos, want)
						}
						break
					}
					pos += s.Len
				}
			}
		})
	}
}

// TestBuildMergePlanRandom is the end-to-end property: gathering every
// participant's bytes through the plan must reproduce exactly the bytes a
// direct per-byte union would, with later (Part, SrcPos) pairs winning
// overlaps — and scattering back must return each participant its own
// window of the merged image.
func TestBuildMergePlanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		const fileLen = 256
		nparts := 1 + rng.Intn(4)
		var items []MergeItem
		streams := make([][]byte, nparts)
		covered := make([]bool, fileLen)
		for part := 0; part < nparts; part++ {
			var segs []Seg
			off := int64(rng.Intn(20))
			for off < fileLen-20 && rng.Intn(4) > 0 {
				l := int64(1 + rng.Intn(12))
				segs = append(segs, Seg{Off: off, Len: l})
				off += l + int64(rng.Intn(15))
			}
			items = AppendSegRuns(items, segs, part)
			var n int64
			for _, s := range segs {
				n += s.Len
			}
			streams[part] = make([]byte, n)
			rng.Read(streams[part])
			for _, s := range segs {
				for b := s.Off; b < s.End(); b++ {
					covered[b] = true
				}
			}
		}
		items, merged, total := BuildMergePlan(items, nil)

		// Reference image: replay the plan's own copy order byte-by-byte at
		// file granularity (overlaps resolve to whichever run copies last).
		type ref struct {
			part int
			pos  int64
		}
		image := make([]ref, fileLen)
		for _, it := range items {
			for b := int64(0); b < it.Len; b++ {
				image[it.Off+b] = ref{it.Part, it.SrcPos + b}
			}
		}

		// Coverage: merged must be exactly the covered byte set, coalesced.
		var unionLen int64
		for _, c := range covered {
			if c {
				unionLen++
			}
		}
		if total != unionLen {
			t.Fatalf("trial %d: total %d, union %d", trial, total, unionLen)
		}
		for i, s := range merged {
			if s.Len <= 0 {
				t.Fatalf("trial %d: empty merged seg %v", trial, s)
			}
			if i > 0 && s.Off <= merged[i-1].End() {
				t.Fatalf("trial %d: merged segs not disjoint-sorted: %v", trial, merged)
			}
		}

		// Gather (write direction): items in plan order, like the engines do.
		out := make([]byte, total)
		for _, it := range items {
			copy(out[it.DstPos:it.DstPos+it.Len], streams[it.Part][it.SrcPos:it.SrcPos+it.Len])
		}
		want := make([]byte, 0, total)
		for _, s := range merged {
			for b := s.Off; b < s.End(); b++ {
				r := image[b]
				want = append(want, streams[r.part][r.pos])
			}
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("trial %d: gathered stream differs from reference union", trial)
		}

		// Scatter (read direction): each participant must get back its own
		// bytes of the merged image.
		for part := 0; part < nparts; part++ {
			got := make([]byte, len(streams[part]))
			for _, it := range items {
				if it.Part == part {
					copy(got[it.SrcPos:it.SrcPos+it.Len], out[it.DstPos:it.DstPos+it.Len])
				}
			}
			// Reference scatter straight from file positions.
			wantP := make([]byte, len(streams[part]))
			for _, it := range items {
				if it.Part != part {
					continue
				}
				var pos int64
				for _, s := range merged {
					if it.Off >= s.Off && it.End() <= s.End() {
						start := pos + (it.Off - s.Off)
						copy(wantP[it.SrcPos:it.SrcPos+it.Len], out[start:start+it.Len])
						break
					}
					pos += s.Len
				}
			}
			if !bytes.Equal(got, wantP) {
				t.Fatalf("trial %d part %d: scattered bytes differ", trial, part)
			}
		}
	}
}
