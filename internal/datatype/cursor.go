package datatype

import (
	"fmt"
	"sort"
)

// Cursor walks the data bytes of a tiled datatype access: count instances
// (count < 0 means unbounded, as used by persistent file realms) of a type
// placed at byte displacement disp. Instance i occupies
// [disp+i*extent, disp+(i+1)*extent).
//
// Cursors are strictly forward: SeekOffset and Next only move toward larger
// file offsets. Work() counts the offset/length pairs touched, which the
// MPI-IO layers convert into virtual CPU time; whole instances are skipped
// with O(1) work (the paper's "skip full datatypes" optimization), while
// movement within an instance is a linear pair-by-pair scan, so succinct
// datatypes (small D, large count) are much cheaper to intersect with a
// window than enumerated ones (large D, count==1).
type Cursor struct {
	segs   []Seg   // one flattened instance
	prefix []int64 // prefix[i] = sum of lens of segs[:i]
	size   int64   // data bytes per instance
	extent int64
	disp   int64
	count  int64 // -1 = unbounded

	inst  int64 // current instance
	idx   int   // current segment within instance
	intra int64 // bytes consumed within current segment

	work  int64
	done  bool
	limit int64 // max data bytes to expose; <0 = unlimited
}

// NewCursor creates a cursor over count instances of t at displacement
// disp. count < 0 means unbounded tiling.
func NewCursor(t Type, disp int64, count int64) *Cursor {
	segs := t.Flatten()
	prefix := make([]int64, len(segs)+1)
	for i, s := range segs {
		prefix[i+1] = prefix[i] + s.Len
	}
	c := &Cursor{
		segs:   segs,
		prefix: prefix,
		size:   t.Size(),
		extent: t.Extent(),
		disp:   disp,
		count:  count,
		limit:  -1,
	}
	if c.size == 0 || c.extent == 0 || count == 0 {
		c.done = true
	}
	return c
}

// Clone returns an independent cursor at the same position with a zeroed
// work counter.
func (c *Cursor) Clone() *Cursor {
	dup := *c
	dup.work = 0
	return &dup
}

// Reset rewinds to the first data byte and zeroes the work counter.
func (c *Cursor) Reset() {
	c.inst, c.idx, c.intra, c.work = 0, 0, 0, 0
	c.done = c.size == 0 || c.extent == 0 || c.count == 0 || c.limit == 0
}

// SetLimit caps the cursor at n data bytes: positions at or beyond stream
// position n read as exhausted. A negative n removes the cap. Used to clip
// a file view to the actual transfer size (the view's filetype conceptually
// repeats forever; the buffer's size decides how much I/O happens).
func (c *Cursor) SetLimit(n int64) {
	c.limit = n
	if n >= 0 && !c.done && c.StreamPos() >= n {
		c.done = true
	}
}

// Remaining returns the data bytes left before the limit (or before the end
// of a bounded access); -1 when unlimited and unbounded.
func (c *Cursor) Remaining() int64 {
	if c.done {
		return 0
	}
	var rem int64 = -1
	if c.count >= 0 {
		rem = c.count*c.size - c.StreamPos()
	}
	if c.limit >= 0 {
		if lr := c.limit - c.StreamPos(); rem < 0 || lr < rem {
			rem = lr
		}
	}
	return rem
}

// Run returns the length of the contiguous data run starting at the current
// position (0 if exhausted), without consuming it.
func (c *Cursor) Run() int64 {
	if c.done {
		return 0
	}
	n := c.segs[c.idx].Len - c.intra
	if c.limit >= 0 {
		if lr := c.limit - c.StreamPos(); lr < n {
			n = lr
		}
	}
	return n
}

// Work returns the number of offset/length pairs touched since creation or
// the last Reset.
func (c *Cursor) Work() int64 { return c.work }

// ChargeWork adds extra pair-processing work (used by callers that do
// per-pair bookkeeping beyond cursor movement, e.g. heap operations).
func (c *Cursor) ChargeWork(n int64) { c.work += n }

// Done reports whether the cursor has consumed every data byte.
func (c *Cursor) Done() bool { return c.done }

// Offset returns the absolute file offset of the next data byte, or -1 if
// the cursor is exhausted.
func (c *Cursor) Offset() int64 {
	if c.done {
		return -1
	}
	return c.disp + c.inst*c.extent + c.segs[c.idx].Off + c.intra
}

// StreamPos returns the number of data bytes preceding the current
// position: the position within the linearized data stream of the access.
func (c *Cursor) StreamPos() int64 {
	if c.done {
		if c.count < 0 {
			return 0 // unbounded cursors never finish normally
		}
		return c.count * c.size
	}
	return c.inst*c.size + c.prefix[c.idx] + c.intra
}

// advance moves past n bytes of the current segment (n must not exceed the
// remainder of the segment).
func (c *Cursor) advance(n int64) {
	c.intra += n
	if c.intra == c.segs[c.idx].Len {
		c.intra = 0
		c.idx++
		c.work++ // finished evaluating this pair
		if c.idx == len(c.segs) {
			c.idx = 0
			c.inst++
			if c.count >= 0 && c.inst >= c.count {
				c.done = true
			}
		}
	}
}

// Next consumes up to max bytes of the current contiguous run and returns
// the absolute file segment consumed along with the stream position of its
// first byte. ok is false when the cursor is exhausted or max <= 0.
func (c *Cursor) Next(max int64) (seg Seg, streamPos int64, ok bool) {
	if c.done || max <= 0 {
		return Seg{}, 0, false
	}
	streamPos = c.StreamPos()
	off := c.Offset()
	n := c.segs[c.idx].Len - c.intra
	if n > max {
		n = max
	}
	if c.limit >= 0 {
		if lr := c.limit - streamPos; n > lr {
			n = lr
		}
	}
	c.advance(n)
	if c.limit >= 0 && !c.done && c.StreamPos() >= c.limit {
		c.done = true
	}
	return Seg{off, n}, streamPos, true
}

// SeekOffset advances the cursor to the first data byte at absolute file
// offset >= off. It returns false if the access contains no such byte.
// Seeking backward is a no-op (the cursor is already past off).
func (c *Cursor) SeekOffset(off int64) bool {
	if c.done {
		return false
	}
	if off <= c.Offset() {
		return true
	}
	rel := off - c.disp
	ti := rel / c.extent
	if ti < 0 {
		ti = 0
	}
	if c.count >= 0 && ti >= c.count {
		c.done = true
		return false
	}
	if ti > c.inst {
		// Skip whole instances in O(1): one division, one pair's worth
		// of work, regardless of how many instances are skipped.
		c.inst, c.idx, c.intra = ti, 0, 0
		c.work++
	}
	// Linear scan within the instance (pair-by-pair evaluation, as the
	// paper describes for enumerated datatypes).
	for {
		instBase := c.disp + c.inst*c.extent
		for c.idx < len(c.segs) {
			s := c.segs[c.idx]
			if instBase+s.End() > off {
				// Position within (or at the start of) this segment.
				if instBase+s.Off >= off {
					c.intra = 0
				} else {
					c.intra = off - (instBase + s.Off)
				}
				if c.limit >= 0 && c.StreamPos() >= c.limit {
					c.done = true
					return false
				}
				return true
			}
			c.idx++
			c.intra = 0
			c.work++
		}
		c.idx = 0
		c.inst++
		c.work++
		if c.count >= 0 && c.inst >= c.count {
			c.done = true
			return false
		}
	}
}

// SeekStream positions the cursor at data byte p of the linearized stream
// (0-based). It returns false if p is past the end of the access. Unlike
// SeekOffset, SeekStream may move in either direction; it is used by the
// independent I/O path to resolve an arbitrary range of the view.
func (c *Cursor) SeekStream(p int64) bool {
	if p < 0 {
		p = 0
	}
	if c.size == 0 || c.extent == 0 || c.count == 0 {
		c.done = true
		return false
	}
	ti := p / c.size
	rem := p % c.size
	if c.count >= 0 && ti >= c.count {
		c.done = true
		return false
	}
	if c.limit >= 0 && p >= c.limit {
		c.done = true
		return false
	}
	// Binary search the prefix sums for the segment containing rem.
	idx := sort.Search(len(c.segs), func(i int) bool { return c.prefix[i+1] > rem })
	c.inst, c.idx, c.intra = ti, idx, rem-c.prefix[idx]
	c.done = false
	c.work++
	return true
}

// String describes the cursor position for debugging.
func (c *Cursor) String() string {
	if c.done {
		return "cursor(done)"
	}
	return fmt.Sprintf("cursor(inst=%d idx=%d intra=%d off=%d stream=%d)",
		c.inst, c.idx, c.intra, c.Offset(), c.StreamPos())
}

// Segments materializes the flattened access of count instances of t at
// disp: the full M = count*D offset/length list with coalescing across
// instance boundaries. This is the representation the original ROMIO-style
// implementation communicates; the number of pairs processed to build it is
// returned as work.
func Segments(t Type, disp int64, count int64) (segs []Seg, work int64) {
	if count < 0 {
		panic("datatype: Segments requires a bounded count")
	}
	flat := t.Flatten()
	ext := t.Extent()
	out := make([]Seg, 0, count*int64(len(flat)))
	for i := int64(0); i < count; i++ {
		instBase := disp + i*ext
		for _, s := range flat {
			off := instBase + s.Off
			if n := len(out); n > 0 && out[n-1].End() == off {
				out[n-1].Len += s.Len
			} else {
				out = append(out, Seg{off, s.Len})
			}
			work++
		}
	}
	return out, work
}

// TotalSize returns the number of data bytes in count instances of t.
func TotalSize(t Type, count int64) int64 {
	if count < 0 {
		return -1
	}
	return t.Size() * count
}
