package integrity

import (
	"sort"
	"sync"
)

// Store keeps the at-rest side of the integrity layer for one file
// system: per-file block checksums recorded at write time, the quarantine
// set of blocks whose stored bytes no longer match, and a bounded ring of
// retained block images that repairs draw from. Block granularity is the
// storage page — the unit pfs moves to and from its stripe-block store —
// so every checksum domain maps onto exactly one OST via the file offset.
//
// The ring is the fast repair path: a corrupted block whose pristine
// image is still retained is fixed in place without replaying the round
// journal. Blocks that age out of the ring are only repairable by the
// journal resume path (an overwrite refreshes the checksum and clears the
// quarantine); when neither applies, reads return ErrDataIntegrity.
type Store struct {
	mu    sync.Mutex
	h     *Hasher
	sums  map[string]map[int64]uint64
	quar  map[string]map[int64]*extent
	wrote map[string]map[int64]*extent
	ring  []retained
	next  int

	mismatches  int64 // at-rest checksum failures detected
	quarantined int64 // blocks ever quarantined
	repairs     int64 // blocks repaired (ring or overwrite)
	unrepaired  int64 // reads that had to surface ErrDataIntegrity
}

// retained is one ring slot: the latest image of (name, block) observed
// at write time. Slots are recycled in place — the data buffer is reused
// when capacities allow — so steady-state writes retain without
// allocating.
type retained struct {
	name string
	idx  int64
	sum  uint64
	data []byte
	live bool
}

// NewStore builds a store hashing with h and retaining up to ringCap
// block images (ringCap <= 0 selects a default sized for the chaos
// matrices' working sets).
func NewStore(h *Hasher, ringCap int) *Store {
	if ringCap <= 0 {
		ringCap = 256
	}
	return &Store{
		h:     h,
		sums:  make(map[string]map[int64]uint64),
		quar:  make(map[string]map[int64]*extent),
		wrote: make(map[string]map[int64]*extent),
		ring:  make([]retained, ringCap),
	}
}

// extent is a merged, sorted set of block-relative byte intervals. The
// store keeps two per block: the bytes ever written (sparse strided
// layouts leave permanent holes inside a block), and — while the block is
// quarantined — the bytes clean rewrites have repaved since. Collective
// engines repair in shuffle-window-sized pieces, often smaller than a
// stripe block, so the quarantine clears when the repaved union covers
// the written union, not only on one monolithic overwrite.
type extent struct {
	cover []qspan
}

type qspan struct{ off, end int64 }

// add merges [off,end) into the set. The steady-state cases — range
// already covered, or extending one existing interval — mutate in place,
// so repeated writes of a stable pattern do not allocate.
func (b *extent) add(off, end int64) {
	if end <= off {
		return
	}
	i := 0
	for i < len(b.cover) && b.cover[i].end < off {
		i++
	}
	no, ne := off, end
	j := i
	for j < len(b.cover) && b.cover[j].off <= end {
		if b.cover[j].off < no {
			no = b.cover[j].off
		}
		if b.cover[j].end > ne {
			ne = b.cover[j].end
		}
		j++
	}
	switch {
	case j == i: // pure insertion between existing intervals
		b.cover = append(b.cover, qspan{})
		copy(b.cover[i+1:], b.cover[i:len(b.cover)-1])
		b.cover[i] = qspan{no, ne}
	case j == i+1: // merges into exactly one interval: update in place
		b.cover[i] = qspan{no, ne}
	default: // swallows several intervals
		b.cover[i] = qspan{no, ne}
		b.cover = append(b.cover[:i+1], b.cover[j:]...)
	}
}

// covers reports whether the set contains all of [off,end).
func (b *extent) covers(off, end int64) bool {
	for _, sp := range b.cover {
		if sp.off <= off && sp.end >= end {
			return true
		}
	}
	return false
}

// coversAll reports whether every interval of other is covered by b.
func (b *extent) coversAll(other *extent) bool {
	for _, sp := range other.cover {
		if !b.covers(sp.off, sp.end) {
			return false
		}
	}
	return true
}

// Record checksums one block's bytes after a write landed its [off,end)
// byte range (block-relative), retains a copy in the ring, and — once
// clean rewrites have repaved every byte the block ever held — clears any
// quarantine on it: a full overwrite through the normal datapath
// (including a journal-replay rewrite) is itself the repair, and
// sub-block repair pieces accumulate until their union covers the block's
// written extent. Never-written gap bytes inside the block (sparse
// strided layouts) don't gate the heal — nothing ever landed there for
// the media to corrupt. While the coverage is still partial, nothing is
// recorded: bytes outside the repaved spans are suspect, and refreshing
// the checksum over the merged content would bless corruption as
// verified. The block stays poisoned (reads keep failing) until the
// coverage completes or a ring repair heals it.
func (s *Store) Record(name string, idx int64, data []byte, off, end int64) {
	if off < 0 {
		off = 0
	}
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	s.mu.Lock()
	w := s.wrote[name]
	if w == nil {
		w = make(map[int64]*extent)
		s.wrote[name] = w
	}
	we := w[idx]
	if we == nil {
		we = &extent{}
		w[idx] = we
	}
	we.add(off, end)
	if q := s.quar[name]; q != nil {
		if qb, held := q[idx]; held {
			qb.add(off, end)
			if !qb.coversAll(we) {
				s.mu.Unlock()
				return
			}
			delete(q, idx)
			s.repairs++
		}
	}
	sum := s.h.Sum(data)
	m := s.sums[name]
	if m == nil {
		m = make(map[int64]uint64)
		s.sums[name] = m
	}
	m[idx] = sum
	r := &s.ring[s.next]
	s.next = (s.next + 1) % len(s.ring)
	r.name, r.idx, r.sum, r.live = name, idx, sum, true
	if cap(r.data) >= len(data) {
		r.data = r.data[:len(data)]
	} else {
		r.data = make([]byte, len(data))
	}
	copy(r.data, data)
	s.mu.Unlock()
}

// Verify checks one block's stored bytes against the recorded checksum.
// Blocks never recorded (sparse holes, pre-integrity writes) verify
// trivially. On mismatch the block is quarantined and false returned; the
// caller decides between inline repair (Repair) and surfacing the error.
func (s *Store) Verify(name string, idx int64, data []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.sums[name]
	if m == nil {
		return true
	}
	want, ok := m[idx]
	if !ok || s.h.Sum(data) == want {
		return true
	}
	s.mismatches++
	q := s.quar[name]
	if q == nil {
		q = make(map[int64]*extent)
		s.quar[name] = q
	}
	if _, held := q[idx]; !held {
		q[idx] = &extent{}
		s.quarantined++
	}
	return false
}

// Repair attempts the ring repair path for a quarantined block: if a
// retained image with the recorded checksum survives, it is copied into
// dst (which must be the block's storage buffer), the quarantine cleared,
// and true returned. Otherwise the block stays quarantined for the
// scrubber / journal-replay path and false is returned.
func (s *Store) Repair(name string, idx int64, dst []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repairLocked(name, idx, dst)
}

func (s *Store) repairLocked(name string, idx int64, dst []byte) bool {
	want, ok := s.sums[name][idx]
	if !ok {
		return false
	}
	// Scan newest-first so a block rewritten while quarantined repairs
	// from its latest image.
	for off := 1; off <= len(s.ring); off++ {
		r := &s.ring[(s.next-off+len(s.ring))%len(s.ring)]
		if !r.live || r.name != name || r.idx != idx || r.sum != want {
			continue
		}
		if len(r.data) != len(dst) {
			continue
		}
		copy(dst, r.data)
		if q := s.quar[name]; q != nil {
			delete(q, idx)
		}
		s.repairs++
		return true
	}
	return false
}

// NoteUnrepairable counts a read that had to surface ErrDataIntegrity.
func (s *Store) NoteUnrepairable() {
	s.mu.Lock()
	s.unrepaired++
	s.mu.Unlock()
}

// Forget drops all checksum and quarantine state for one file (the file
// was removed; its ring images are left to age out naturally).
func (s *Store) Forget(name string) {
	s.mu.Lock()
	delete(s.sums, name)
	delete(s.quar, name)
	delete(s.wrote, name)
	s.mu.Unlock()
}

// Quarantined reports whether (name, idx) is currently quarantined.
func (s *Store) Quarantined(name string, idx int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, held := s.quar[name][idx]
	return held
}

// Backlog returns how many blocks are quarantined right now, optionally
// restricted to file names with the given prefix ("" = all). The prefix
// form is what makes the scrubber tenant-aware: tenants namespace their
// files, so a prefix is a tenant.
func (s *Store) Backlog(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for name, q := range s.quar {
		if prefix != "" && !hasPrefix(name, prefix) {
			continue
		}
		n += len(q)
	}
	return n
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Mismatches  int64 // at-rest checksum failures detected
	Quarantined int64 // blocks ever quarantined
	Repairs     int64 // blocks repaired (ring hit or overwrite)
	Unrepaired  int64 // reads that surfaced ErrDataIntegrity
	Backlog     int   // blocks quarantined right now
}

// Snapshot returns the store's counters.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, q := range s.quar {
		n += len(q)
	}
	return Stats{
		Mismatches:  s.mismatches,
		Quarantined: s.quarantined,
		Repairs:     s.repairs,
		Unrepaired:  s.unrepaired,
		Backlog:     n,
	}
}

// quarList returns the quarantined (name, idx) pairs under a prefix in
// deterministic (name, idx) order — map iteration must not leak
// scheduling nondeterminism into scrub order.
func (s *Store) quarList(prefix string) []blockRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []blockRef
	for name, q := range s.quar {
		if prefix != "" && !hasPrefix(name, prefix) {
			continue
		}
		for idx := range q {
			out = append(out, blockRef{name, idx})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].idx < out[j].idx
	})
	return out
}

type blockRef struct {
	name string
	idx  int64
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}
