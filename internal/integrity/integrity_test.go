package integrity

import "testing"

func TestSumDeterministicAndSeedSensitive(t *testing.T) {
	h1 := NewHasher(42)
	h2 := NewHasher(42)
	h3 := NewHasher(43)
	defer h1.Release()
	defer h2.Release()
	defer h3.Release()
	data := []byte("the quick brown fox jumps over the lazy dog")
	if h1.Sum(data) != h2.Sum(data) {
		t.Fatal("same seed, same data must hash equal")
	}
	if h1.Sum(data) == h3.Sum(data) {
		t.Fatal("different seeds should hash differently")
	}
	if h1.Sum(nil) != h1.Sum(nil) {
		t.Fatal("empty input must be stable")
	}
}

func TestSumDetectsEverySingleBitFlip(t *testing.T) {
	h := NewHasher(7)
	defer h.Release()
	data := make([]byte, 67) // odd length exercises the tail path
	for i := range data {
		data[i] = byte(i * 37)
	}
	want := h.Sum(data)
	for bit := 0; bit < len(data)*8; bit++ {
		data[bit/8] ^= 1 << (bit % 8)
		if h.Sum(data) == want {
			t.Fatalf("bit flip at %d not detected", bit)
		}
		data[bit/8] ^= 1 << (bit % 8)
	}
	if h.Sum(data) != want {
		t.Fatal("restored data must hash to the original sum")
	}
}

func TestSumAllocationFree(t *testing.T) {
	h := NewHasher(1)
	defer h.Release()
	data := make([]byte, 4096)
	if n := testing.AllocsPerRun(100, func() { _ = h.Sum(data) }); n != 0 {
		t.Fatalf("Sum allocated %.1f per call, want 0", n)
	}
}

func TestStoreVerifyQuarantineRepair(t *testing.T) {
	h := NewHasher(9)
	defer h.Release()
	st := NewStore(h, 8)
	blk := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	st.Record("f", 0, blk, 0, int64(len(blk)))
	if !st.Verify("f", 0, blk) {
		t.Fatal("pristine block must verify")
	}
	blk[3] ^= 0x10
	if st.Verify("f", 0, blk) {
		t.Fatal("corrupted block must fail verification")
	}
	if !st.Quarantined("f", 0) {
		t.Fatal("failed verification must quarantine the block")
	}
	if !st.Repair("f", 0, blk) {
		t.Fatal("retained image should repair the block")
	}
	if blk[3] != 4 {
		t.Fatalf("repair did not restore bytes: got %d", blk[3])
	}
	if st.Quarantined("f", 0) {
		t.Fatal("repair must clear the quarantine")
	}
	s := st.Snapshot()
	if s.Mismatches != 1 || s.Quarantined != 1 || s.Repairs != 1 || s.Backlog != 0 {
		t.Fatalf("unexpected stats: %+v", s)
	}
}

func TestStoreOverwriteClearsQuarantine(t *testing.T) {
	h := NewHasher(11)
	defer h.Release()
	st := NewStore(h, 2)
	blk := []byte{9, 9, 9, 9}
	st.Record("g", 5, blk, 0, int64(len(blk)))
	blk[0] ^= 1
	if st.Verify("g", 5, blk) {
		t.Fatal("flip must be detected")
	}
	// Age the pristine image out of the tiny ring.
	st.Record("x", 0, []byte{1}, 0, int64(len([]byte{1})))
	st.Record("x", 1, []byte{2}, 0, int64(len([]byte{2})))
	if st.Repair("g", 5, blk) {
		t.Fatal("repair must fail once the image left the ring")
	}
	// Journal-replay path: the block is rewritten through the datapath.
	st.Record("g", 5, blk, 0, int64(len(blk)))
	if st.Quarantined("g", 5) {
		t.Fatal("overwrite must clear the quarantine")
	}
	if !st.Verify("g", 5, blk) {
		t.Fatal("rewritten block must verify under its fresh sum")
	}
}

func TestScrubberDrainsBacklogDeterministically(t *testing.T) {
	h := NewHasher(3)
	defer h.Release()
	st := NewStore(h, 32)
	pages := map[string]map[int64][]byte{"t0/f": {}, "t1/f": {}}
	for name, m := range pages {
		for i := int64(0); i < 3; i++ {
			b := []byte{byte(i), byte(i + 1), byte(i + 2), byte(i + 3)}
			m[i] = b
			st.Record(name, i, b, 0, int64(len(b)))
		}
	}
	// Corrupt everything and let verification quarantine it.
	for name, m := range pages {
		for i, b := range m {
			b[0] ^= 0x80
			if st.Verify(name, i, b) {
				t.Fatalf("flip on %s/%d not detected", name, i)
			}
		}
	}
	sc := NewScrubber(st, func(name string, idx int64) bool {
		return st.Repair(name, idx, pages[name][idx])
	}, 2)
	if got := st.Backlog(""); got != 6 {
		t.Fatalf("backlog = %d, want 6", got)
	}
	if got := st.Backlog("t1/"); got != 3 {
		t.Fatalf("t1 backlog = %d, want 3", got)
	}
	// Tenant-scoped ticks only touch that tenant's blocks.
	if fixed := sc.Tick("t1/"); fixed != 2 {
		t.Fatalf("tick fixed %d, want 2", fixed)
	}
	if got := st.Backlog("t0/"); got != 3 {
		t.Fatalf("t0 backlog disturbed: %d", got)
	}
	for sc.Backlog("") > 0 {
		if sc.Tick("") == 0 {
			t.Fatal("scrubber stopped making progress")
		}
	}
	for name, m := range pages {
		for i, b := range m {
			if !st.Verify(name, i, b) {
				t.Fatalf("scrubbed block %s/%d does not verify", name, i)
			}
		}
	}
	ss := sc.Snapshot()
	if ss.Repaired != 6 || ss.Backlog != 0 {
		t.Fatalf("unexpected scrub stats: %+v", ss)
	}
}
