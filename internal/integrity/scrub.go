package integrity

import "sync"

// RepairFn installs a pristine block image into the underlying storage.
// It is supplied by the file system (which owns the block buffers) and
// returns false when the block no longer exists.
type RepairFn func(name string, idx int64) bool

// Scrubber drains a store's quarantine in the background, a few blocks
// per logical tick, so corruption detected on one read is repaired before
// the next tenant touches it instead of waiting for the next foreground
// access. It is driven by whatever logical clock the host has — the
// tenant service ticks it from its admission loop — and restricted scans
// (per-tenant prefixes) keep one tenant's corrupted files from consuming
// another's scrub budget.
type Scrubber struct {
	mu      sync.Mutex
	st      *Store
	repair  RepairFn
	perTick int

	ticks    int64
	scanned  int64
	repaired int64
	stuck    int64 // scans that left the block quarantined (journal replay is its only hope)
}

// NewScrubber builds a scrubber over st repairing through fn, scanning up
// to perTick quarantined blocks per Tick (non-positive selects 4, enough
// to drain injected corruption within a few admission ticks).
func NewScrubber(st *Store, fn RepairFn, perTick int) *Scrubber {
	if perTick <= 0 {
		perTick = 4
	}
	return &Scrubber{st: st, repair: fn, perTick: perTick}
}

// Tick scans up to the per-tick budget of quarantined blocks under the
// prefix ("" = every file) and attempts the ring-repair path on each.
// It returns how many blocks were repaired this tick. Deterministic: the
// scan order is the sorted quarantine list.
func (s *Scrubber) Tick(prefix string) int {
	if s == nil {
		return 0
	}
	refs := s.st.quarList(prefix)
	if len(refs) > s.perTick {
		refs = refs[:s.perTick]
	}
	fixed := 0
	for _, r := range refs {
		if s.repair(r.name, r.idx) {
			fixed++
		}
	}
	s.mu.Lock()
	s.ticks++
	s.scanned += int64(len(refs))
	s.repaired += int64(fixed)
	s.stuck += int64(len(refs) - fixed)
	s.mu.Unlock()
	return fixed
}

// Backlog returns the current quarantine depth under the prefix.
func (s *Scrubber) Backlog(prefix string) int {
	if s == nil {
		return 0
	}
	return s.st.Backlog(prefix)
}

// ScrubStats is a snapshot of the scrubber's progress counters.
type ScrubStats struct {
	Ticks    int64 // scrub ticks executed
	Scanned  int64 // quarantined blocks examined
	Repaired int64 // blocks fixed from retained images
	Stuck    int64 // examinations that left the block quarantined
	Backlog  int   // blocks quarantined right now
}

// Snapshot returns the scrubber's counters plus the live backlog.
func (s *Scrubber) Snapshot() ScrubStats {
	if s == nil {
		return ScrubStats{}
	}
	s.mu.Lock()
	out := ScrubStats{Ticks: s.ticks, Scanned: s.scanned, Repaired: s.repaired, Stuck: s.stuck}
	s.mu.Unlock()
	out.Backlog = s.st.Backlog("")
	return out
}
