// Package integrity is the end-to-end data-integrity layer of the stack:
// seeded, allocation-free checksums for in-flight payloads and at-rest
// stripe blocks, a per-file block-checksum store with a quarantine set, a
// bounded ring of retained block images for repair, and a logical-tick
// scrubber that drains the quarantine in the background.
//
// Everything is deterministic for a fixed seed, like the fault schedules
// it defends against: the same run detects the same corruptions at the
// same points on every execution, which is what lets the chaos matrices
// gate on byte-identical outcomes.
package integrity

import (
	"encoding/binary"
	"errors"
	"sync"
)

// ErrDataIntegrity marks data whose checksum did not match and could not
// be repaired — neither by bounded re-request (wire) nor from a retained
// block image or journal replay (at rest). It is the sentinel the
// collective error agreement escalates to a uniform abort; pfs re-exports
// it so storage-layer callers need not import this package.
var ErrDataIntegrity = errors.New("integrity: checksum mismatch, data unrepairable")

// MaxReRequests bounds how many times a receiver re-requests a payload
// whose wire checksum failed before giving up and escalating to
// ErrDataIntegrity. A corruption rule whose repeat count exceeds it is
// unrepairable by construction.
const MaxReRequests = 3

// tabWords is the size of the seeded scratch table the hash mixes through.
const tabWords = 256

// tabPool recycles scratch tables across hashers so short-lived worlds
// (tests, chaos scenarios) do not churn 2KiB allocations.
var tabPool = sync.Pool{New: func() any { return new([tabWords]uint64) }}

// Hasher computes seeded 64-bit checksums. The seed expands into a
// pooled scratch table at construction; Sum itself allocates nothing and
// is safe for concurrent use (the table is read-only after NewHasher).
type Hasher struct {
	seed uint64
	tab  *[tabWords]uint64
}

// NewHasher builds a hasher for the seed, borrowing its scratch table
// from the pool. Call Release when the owning world or file system is
// torn down to recycle the table; a dropped hasher merely falls to the GC.
func NewHasher(seed int64) *Hasher {
	h := &Hasher{seed: smix(uint64(seed) + 0x9e3779b97f4a7c15)}
	h.tab = tabPool.Get().(*[tabWords]uint64)
	x := h.seed
	for i := range h.tab {
		x = smix(x + 0x9e3779b97f4a7c15)
		h.tab[i] = x
	}
	return h
}

// Release returns the scratch table to the pool. The hasher must not be
// used afterwards.
func (h *Hasher) Release() {
	if h.tab != nil {
		tabPool.Put(h.tab)
		h.tab = nil
	}
}

// Sum checksums data under the hasher's seed. Word-at-a-time with a
// table-dependent mix, so single-bit flips anywhere in the payload change
// the sum; allocation-free.
func (h *Hasher) Sum(data []byte) uint64 {
	x := h.seed ^ uint64(len(data))*0xff51afd7ed558ccd
	for len(data) >= 8 {
		k := binary.LittleEndian.Uint64(data)
		x = (x << 27) | (x >> 37)
		x ^= k * 0x9e3779b97f4a7c15
		x ^= h.tab[byte(x)]
		data = data[8:]
	}
	if len(data) > 0 {
		var tail uint64
		for i, b := range data {
			tail |= uint64(b) << (8 * uint(i))
		}
		x = (x << 27) | (x >> 37)
		x ^= tail * 0x9e3779b97f4a7c15
		x ^= h.tab[byte(x)]
	}
	return smix(x)
}

// smix is the splitmix64 finalizer shared with the fault-schedule coins.
func smix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
