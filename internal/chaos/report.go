package chaos

import (
	"fmt"
	"os"

	"flexio/internal/analyze"
	"flexio/internal/metrics"
	"flexio/internal/report"
)

// baselines caches fault-free report Sources per engine configuration, so a
// soak pass over a full matrix runs each clean configuration once and diffs
// every faulted scenario of that configuration against it.
type baselines map[string]*report.Source

// source returns the fault-free Source for the scenario's engine
// configuration, running it on first use. A failed baseline run caches nil
// so it is not retried for every scenario that shares the configuration.
func (b baselines) source(s Scenario) *report.Source {
	clean := s
	clean.Fault = FaultNone
	key := clean.Name()
	if src, ok := b[key]; ok {
		return src
	}
	var src *report.Source
	if out, err := clean.Run(); err == nil && out != nil && out.Metrics != nil {
		if fromSet, ferr := report.FromSet(key, out.Metrics); ferr == nil {
			src = fromSet
		}
	}
	b[key] = src
	return src
}

// writeReportFile diffs a faulted run's metrics against the fault-free
// baseline and writes the ranked differential report — followed by the
// analyzer's findings on it — to path.
func writeReportFile(baseline *report.Source, met *metrics.Set, label, path string) error {
	if baseline == nil {
		return fmt.Errorf("no fault-free baseline")
	}
	cur, err := report.FromSet(label, met)
	if err != nil {
		return err
	}
	return writeDiffFile(baseline, cur, path)
}

// writeDiffFile writes the differential report between two prepared Sources
// to path.
func writeDiffFile(old, cur *report.Source, path string) error {
	rep := report.Diff(old, cur)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(f, rep.Format()); err != nil {
		f.Close()
		return err
	}
	if fs := analyze.ReportFindings(rep); len(fs) > 0 {
		if _, err := f.WriteString(analyze.FormatReport(fs)); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
