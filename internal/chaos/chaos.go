// Package chaos is a deterministic fault-injection harness for the
// collective I/O implementations. It enumerates seeded fault scenarios
// across both engines, both transfer directions, and the buffered I/O
// methods, and checks the robustness invariants the fault model promises:
//
//   - Agreement: a collective either completes on every rank or returns an
//     error of the same class on every rank (wrapping ErrCollectiveAbort) —
//     and it always returns: no deadlock.
//   - Integrity: when the collective reports success, the bytes are right,
//     verified against an independently computed reference image.
//   - Accounting: recovery work is visible in virtual time — the trace and
//     the stats agree on the backoff cost to within 1% — and the trace
//     stays well formed (balanced spans, monotone clocks).
//
// Every scenario is seeded and virtual-timed, so a failure reproduces
// exactly and its Chrome trace can be exported for inspection.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"

	"flexio/internal/core"
	"flexio/internal/critpath"
	"flexio/internal/datatype"
	"flexio/internal/hpio"
	"flexio/internal/metrics"
	"flexio/internal/mpi"
	"flexio/internal/mpiio"
	"flexio/internal/pfs"
	"flexio/internal/sim"
	"flexio/internal/stats"
	"flexio/internal/trace"
	"flexio/internal/twophase"
)

// Fault names the injection pattern a scenario applies.
type Fault string

const (
	// FaultTransient injects a bounded burst of EAGAIN-style errors that
	// the retry layer must absorb.
	FaultTransient Fault = "transient"
	// FaultPartial injects short transfers whose tails must be resumed.
	FaultPartial Fault = "partial"
	// FaultRound1 injects a hard error confined to collective round 1;
	// the collective must abort on every rank with the io class.
	FaultRound1 Fault = "hard-round1"
	// FaultBrownout slows every OST; the collective must still complete.
	FaultBrownout Fault = "brownout"
	// FaultStorm runs a lock-revoke storm; the collective must complete.
	FaultStorm Fault = "storm"
	// FaultGiveup injects unhealing transient errors so the retry ladder
	// exhausts; the collective must abort with the transient class.
	FaultGiveup Fault = "giveup"
	// FaultSieveHard injects hard errors only into sieve operations; with
	// Degraded set the engine falls back to naive I/O and completes,
	// otherwise it aborts with the io class.
	FaultSieveHard Fault = "sieve-hard"

	// FaultNone runs the workload with an empty fault schedule. It is not
	// part of the soak matrices; the soaks run it once per engine
	// configuration to obtain the fault-free baseline their .report.txt
	// differential artifacts diff against.
	FaultNone Fault = "none"
)

// Scenario is one deterministic chaos experiment.
type Scenario struct {
	// Engine selects the collective: "core-nb" (nonblocking pipeline),
	// "core-a2a" (Alltoallw), or "twophase" (ROMIO-style baseline).
	Engine string
	// Write selects the transfer direction.
	Write bool
	// Method is the buffered I/O method the core engine drains rounds
	// with (ignored by twophase, which integrates its own sieve).
	Method mpiio.Method
	// Degraded enables the core engine's fall-back-to-naive recovery.
	Degraded bool
	// Fault is the injection pattern.
	Fault Fault
	// Seed drives the fault schedule's probability coins.
	Seed int64
	// Preagg enables node-local pre-aggregation, so the fault planes also
	// exercise the two-level exchange (chaos worlds run under a node map of
	// nodeRanks ranks per node).
	Preagg bool
}

// Name is a stable identifier for logs, subtests, and trace file names.
func (s Scenario) Name() string {
	dir := "read"
	if s.Write {
		dir = "write"
	}
	n := fmt.Sprintf("%s-%s-%s-%s", s.Engine, dir, s.Method, s.Fault)
	if s.Degraded {
		n += "-degraded"
	}
	if s.Preagg {
		n += "-pre"
	}
	return n
}

// wantClass is the error class the scenario must agree on (ClassOK means
// the collective must succeed).
func (s Scenario) wantClass() int64 {
	switch s.Fault {
	case FaultRound1:
		return mpiio.ClassIO
	case FaultGiveup:
		return mpiio.ClassTransient
	case FaultSieveHard:
		if s.Degraded && s.Write && s.Engine != "twophase" {
			return mpiio.ClassOK
		}
		return mpiio.ClassIO
	default:
		return mpiio.ClassOK
	}
}

// wantCounter names a stat that must be nonzero after the run, proving the
// injection actually exercised the path under test (empty = nothing to
// prove; FaultNone injects nothing).
func (s Scenario) wantCounter() string {
	switch s.Fault {
	case FaultNone:
		return ""
	case FaultTransient:
		return stats.CRetries
	case FaultPartial:
		return stats.CPartialResumes
	case FaultBrownout:
		return stats.CBrownoutServes
	case FaultStorm:
		return stats.CStormRevokes
	case FaultGiveup:
		return stats.CGiveups
	default:
		return stats.CFaultsInjected
	}
}

// schedule builds the scenario's seeded fault plan.
func (s Scenario) schedule() *pfs.FaultSchedule {
	sched := pfs.NewFaultSchedule(s.Seed)
	switch s.Fault {
	case FaultTransient:
		sched.Add(pfs.Rule{Class: pfs.ClassTransient, Count: 2})
	case FaultPartial:
		// Scoped to the transfer direction: an unscoped rule would spend
		// its injections on the sieve RMW prefetch reads, which the pfs
		// layer reports as transient (no data bytes lost), not partial.
		kind := "read"
		if s.Write {
			kind = "write"
		}
		sched.Add(pfs.Rule{Kind: kind, Class: pfs.ClassPartial, PartialFrac: 0.5, Count: 2})
	case FaultRound1:
		sched.Add(pfs.Rule{Rounds: []int{1}, Class: pfs.ClassIO})
	case FaultBrownout:
		sched.AddBrownout(pfs.Brownout{OST: -1, Slowdown: 4, ExtraLatency: 1e-4})
	case FaultStorm:
		sched.AddStorm(pfs.RevokeStorm{PerGrant: 2})
	case FaultGiveup:
		sched.Add(pfs.Rule{Class: pfs.ClassTransient})
	case FaultSieveHard:
		sched.Add(pfs.Rule{Kind: "write", Class: pfs.ClassIO,
			Match: func(op pfs.Op) bool { return op.Sieve }})
	}
	return sched
}

// collective instantiates the engine under test.
func (s Scenario) collective() mpiio.Collective {
	switch s.Engine {
	case "core-a2a":
		return core.New(core.Options{Comm: core.Alltoallw, Method: s.Method, Degraded: s.Degraded, Preagg: s.Preagg})
	case "twophase":
		tw := twophase.New()
		if s.Preagg {
			tw.WithPreagg()
		}
		return tw
	default:
		return core.New(core.Options{Method: s.Method, Degraded: s.Degraded, Preagg: s.Preagg})
	}
}

// Outcome reports what one scenario run observed.
type Outcome struct {
	Scenario Scenario
	// Class is the agreed error class (ClassOK when the collective
	// succeeded on every rank).
	Class int64
	// Injected counts faults the schedule fired.
	Injected int64
	// Stats is the merged per-rank recorder.
	Stats *stats.Recorder
	// Elapsed is the collective's virtual wall time.
	Elapsed sim.Time
	// Trace is the virtual-time event record, exportable as a Chrome
	// trace for postmortems.
	Trace *trace.Sink
	// Metrics is the live registry set; its flight recorder holds the
	// rounds leading up to an abort and is dumped as a postmortem
	// artifact alongside the trace.
	Metrics *metrics.Set
	// Comm is the rank×rank communication matrix of the faulted phase.
	Comm *mpi.CommMatrix
}

// nodeRanks is the block node-mapping width chaos worlds run under, so
// comm-matrix artifacts split shuffle bytes into inter- and intra-node
// (matching benchsuite.NodeRanks).
const nodeRanks = 2

// Run executes the scenario and checks every invariant. The returned error
// is an invariant violation (nil means the scenario behaved); the Outcome
// is returned even on violation so the caller can export the trace.
func (s Scenario) Run() (*Outcome, error) {
	// A gapped interleaved tile: holes keep aggregator accesses
	// noncontiguous (exercising data sieving and its RMW prefetch) and the
	// small collective buffer splits each access into several rounds.
	wl := hpio.Pattern{Ranks: 4, RegionSize: 64, RegionCount: 32, Spacing: 64}
	cfg := sim.DefaultConfig()
	w := mpi.NewWorld(wl.Ranks, cfg)
	fs := pfs.NewFileSystem(cfg)
	const fname = "chaos.dat"

	// Reads verify against a file seeded through the trusted, fault-free
	// independent path.
	if !s.Write {
		seedErr := make(chan error, wl.Ranks)
		w.Run(func(p *mpi.Proc) {
			f, err := mpiio.Open(p, fs, fname, mpiio.Info{IndepMethod: mpiio.ListIO})
			if err != nil {
				seedErr <- err
				return
			}
			ft, disp := wl.Filetype(p.Rank())
			if err := f.SetView(disp, datatype.Bytes(1), ft); err != nil {
				seedErr <- err
				return
			}
			mt, _ := wl.Memtype()
			if err := f.WriteIndependent(wl.FillBuffer(p.Rank()), mt, wl.RegionCount); err != nil {
				seedErr <- err
				return
			}
			seedErr <- f.Close()
		})
		for i := 0; i < wl.Ranks; i++ {
			if err := <-seedErr; err != nil {
				return nil, fmt.Errorf("chaos: seeding %s: %w", s.Name(), err)
			}
		}
	}

	// Trace and time only the faulted phase.
	sink := w.EnableTracing(0)
	met := w.EnableMetrics()
	comm := w.EnableCommMatrix()
	w.SetNodeMap(mpi.BlockNodeMap(nodeRanks))
	w.ResetClocks()
	fs.ResetTiming()
	sched := s.schedule()
	fs.SetFaultSchedule(sched)

	errs := make([]error, wl.Ranks)
	mism := make([]bool, wl.Ranks)
	w.Run(func(p *mpi.Proc) {
		f, err := mpiio.Open(p, fs, fname, mpiio.Info{
			Collective:  s.collective(),
			CollBufSize: 1024,
			RetryLimit:  6,
		})
		if err != nil {
			errs[p.Rank()] = err
			return
		}
		ft, disp := wl.Filetype(p.Rank())
		if err := f.SetView(disp, datatype.Bytes(1), ft); err != nil {
			errs[p.Rank()] = err
			return
		}
		mt, bufLen := wl.Memtype()
		if s.Write {
			errs[p.Rank()] = f.WriteAll(wl.FillBuffer(p.Rank()), mt, wl.RegionCount)
		} else {
			buf := make([]byte, bufLen)
			if err := f.ReadAll(buf, mt, wl.RegionCount); err != nil {
				errs[p.Rank()] = err
			} else {
				got, _ := datatype.Pack(buf, mt, 0, wl.RegionCount)
				exp, _ := datatype.Pack(wl.FillBuffer(p.Rank()), mt, 0, wl.RegionCount)
				mism[p.Rank()] = !bytes.Equal(got, exp)
			}
		}
		f.Close()
	})

	out := &Outcome{
		Scenario: s,
		Injected: sched.Injected(),
		Stats:    stats.Merge(w.Recorders()...),
		Elapsed:  w.MaxClock(),
		Trace:    sink,
		Metrics:  met,
		Comm:     comm,
	}

	// Invariant 1: agreement. All ranks succeed, or all ranks fail with
	// the same class wrapping ErrCollectiveAbort.
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed != 0 && failed != wl.Ranks {
		return out, fmt.Errorf("agreement violated: %d of %d ranks errored: %v", failed, wl.Ranks, errs)
	}
	out.Class = mpiio.ErrorClass(errs[0])
	for r, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, mpiio.ErrCollectiveAbort) {
			return out, fmt.Errorf("rank %d error does not wrap ErrCollectiveAbort: %v", r, err)
		}
		if c := mpiio.ErrorClass(err); c != out.Class {
			return out, fmt.Errorf("rank %d agreed class %s, rank 0 %s",
				r, mpiio.ClassName(c), mpiio.ClassName(out.Class))
		}
	}
	if want := s.wantClass(); out.Class != want {
		return out, fmt.Errorf("agreed class %s, want %s (rank 0: %v)",
			mpiio.ClassName(out.Class), mpiio.ClassName(want), errs[0])
	}

	// Invariant 2: integrity on success.
	if out.Class == mpiio.ClassOK {
		if s.Write {
			img := fs.Snapshot(fname, wl.FileSize())
			ref := wl.Reference()
			for i := range ref {
				if img[i] != ref[i] {
					return out, fmt.Errorf("file byte %d = %d, want %d", i, img[i], ref[i])
				}
			}
		} else {
			for r, bad := range mism {
				if bad {
					return out, fmt.Errorf("rank %d: read-back data mismatch", r)
				}
			}
		}
	}

	// Invariant 3: the injection actually exercised the intended path.
	if s.Fault != FaultNone && s.Fault != FaultBrownout && s.Fault != FaultStorm && out.Injected == 0 {
		return out, fmt.Errorf("fault schedule never fired")
	}
	if c := s.wantCounter(); c != "" && out.Stats.Counter(c) == 0 {
		return out, fmt.Errorf("counter %q stayed zero", c)
	}

	// Invariant 4: accounting. The trace is well formed and agrees with
	// the stats on the virtual-time cost of backoff to within 1%.
	if err := sink.Check(); err != nil {
		return out, fmt.Errorf("trace malformed: %w", err)
	}
	sb := out.Stats.Time(stats.PBackoff)
	tb := sink.Breakdown().PhaseTotal(stats.PBackoff)
	if drift := math.Abs(float64(sb - tb)); sb > 0 && drift > 0.01*float64(sb) {
		return out, fmt.Errorf("backoff drift: stats %v vs trace %v", sb, tb)
	}
	return out, nil
}

// Matrix enumerates the full scenario grid: both engines (and both core
// exchange protocols), both directions, the buffered I/O methods, and every
// fault pattern — plus the degraded-mode recovery scenarios. Seeds are a
// deterministic function of the scenario index.
func Matrix() []Scenario {
	engines := []struct {
		name   string
		method mpiio.Method
	}{
		{"core-nb", mpiio.DataSieve},
		{"core-nb", mpiio.ListIO},
		{"core-a2a", mpiio.DataSieve},
		{"twophase", mpiio.DataSieve},
	}
	faults := []Fault{FaultTransient, FaultPartial, FaultRound1, FaultBrownout, FaultStorm, FaultGiveup}
	var ms []Scenario
	i := int64(0)
	for _, e := range engines {
		for _, write := range []bool{true, false} {
			for _, f := range faults {
				i++
				ms = append(ms, Scenario{
					Engine: e.name, Write: write, Method: e.method,
					Fault: f, Seed: 1000 + i,
				})
			}
		}
	}
	// Degraded-mode recovery: hard sieve faults, with and without the
	// fallback, on both core exchange protocols.
	for _, e := range []string{"core-nb", "core-a2a"} {
		for _, degraded := range []bool{false, true} {
			i++
			ms = append(ms, Scenario{
				Engine: e, Write: true, Method: mpiio.DataSieve,
				Degraded: degraded, Fault: FaultSieveHard, Seed: 1000 + i,
			})
		}
	}
	// Pre-aggregation riding the storage-fault planes: the two-level
	// exchange must keep agreement and integrity through retries, partial
	// transfers, and hard round aborts on every engine and direction.
	for _, e := range []string{"core-nb", "core-a2a", "twophase"} {
		for _, write := range []bool{true, false} {
			for _, f := range []Fault{FaultTransient, FaultPartial, FaultRound1} {
				i++
				ms = append(ms, Scenario{
					Engine: e, Write: write, Method: mpiio.DataSieve,
					Fault: f, Seed: 1000 + i, Preagg: true,
				})
			}
		}
	}
	return ms
}

// Quick is the short-mode subset: one scenario per fault pattern.
func Quick() []Scenario {
	seen := map[Fault]bool{}
	var qs []Scenario
	for _, s := range Matrix() {
		if !seen[s.Fault] {
			seen[s.Fault] = true
			qs = append(qs, s)
		}
	}
	return qs
}

// Soak runs the scenarios, logging one line each via logf. Failing
// scenarios export their Chrome trace into traceDir (when non-empty) as
// <name>.trace.json; scenarios that aborted or violated an invariant
// additionally dump their flight recorder as <name>.flight.json (the
// canonical, byte-deterministic form — see TestFlightDumpDeterministic).
// Every scenario writes <name>.report.txt, the ranked differential report
// of the faulted run against a fault-free baseline of the same engine
// configuration. It returns the number of invariant violations.
func Soak(scenarios []Scenario, traceDir string, logf func(format string, args ...any)) int {
	failures := 0
	bl := baselines{}
	for _, s := range scenarios {
		out, err := s.Run()
		status := "ok"
		if err != nil {
			failures++
			status = "FAIL: " + err.Error()
		}
		var class string
		var elapsed sim.Time
		var injected, retries, resumes int64
		if out != nil {
			class = mpiio.ClassName(out.Class)
			elapsed = out.Elapsed
			injected = out.Injected
			retries = out.Stats.Counter(stats.CRetries)
			resumes = out.Stats.Counter(stats.CPartialResumes)
		}
		logf("%-44s class=%-9s inj=%-3d retry=%-3d resume=%-3d t=%8.3fms  %s",
			s.Name(), class, injected, retries, resumes, float64(elapsed)*1e3, status)
		if traceDir == "" || out == nil {
			continue
		}
		if err != nil && out.Trace != nil {
			path := traceDir + "/" + s.Name() + ".trace.json"
			if werr := out.Trace.WriteChromeTraceFile(path); werr == nil {
				logf("  trace written to %s", path)
			}
			path = traceDir + "/" + s.Name() + ".critpath.txt"
			if werr := writeCritPathFile(out.Trace, path); werr == nil {
				logf("  critical path written to %s", path)
			}
		}
		if (err != nil || out.Class != mpiio.ClassOK) && out.Metrics != nil {
			path := traceDir + "/" + s.Name() + ".flight.json"
			if werr := writeFlightFile(out.Metrics, path); werr == nil {
				logf("  flight recorder written to %s", path)
			}
			if out.Comm != nil {
				path = traceDir + "/" + s.Name() + ".comm.json"
				if werr := writeCommFile(out.Comm, path); werr == nil {
					logf("  comm matrix written to %s", path)
				}
			}
		}
		if out.Metrics != nil {
			path := traceDir + "/" + s.Name() + ".report.txt"
			if werr := writeReportFile(bl.source(s), out.Metrics, s.Name(), path); werr == nil {
				logf("  differential report written to %s", path)
			}
		}
	}
	return failures
}

// writeFlightFile dumps the canonical flight-recorder JSON to path.
func writeFlightFile(met *metrics.Set, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := met.Dump(false).WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCritPathFile writes the critical-path report computed from the
// scenario trace to path.
func writeCritPathFile(sink *trace.Sink, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(critpath.Analyze(sink).Format()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCommFile dumps the comm matrix JSON (under the chaos node map) to
// path.
func writeCommFile(comm *mpi.CommMatrix, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := comm.WriteJSON(f, mpi.BlockNodeMap(nodeRanks)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
