package chaos

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"flexio/internal/core"
	"flexio/internal/datatype"
	"flexio/internal/hpio"
	"flexio/internal/metrics"
	"flexio/internal/mpi"
	"flexio/internal/mpiio"
	"flexio/internal/pfs"
	"flexio/internal/sim"
	"flexio/internal/stats"
	"flexio/internal/trace"
	"flexio/internal/twophase"
)

// RankFault names a rank-level injection pattern — process failures, as
// opposed to the storage failures of Fault. Both compose: see
// RankCrashBrownout.
type RankFault string

const (
	// RankCrashShuffle kills the victim at round 0, before any round data
	// has been exchanged: the write journal is empty and recovery replays
	// the entire collective under reassigned realms.
	RankCrashShuffle RankFault = "crash-before-shuffle"
	// RankCrashMid kills the victim at round 2, after earlier rounds
	// became durable: recovery replays only what the journal lacks (the
	// skip path needs the victim to be a pure client — realm layouts that
	// survive the failover keep their journal epoch).
	RankCrashMid RankFault = "crash-mid-rounds"
	// RankStraggler stalls the victim far past the collective deadline at
	// round 1 without killing it: deadline detection must flag it suspect
	// and abort every rank on the same decision.
	RankStraggler RankFault = "straggler"
	// RankDropStorm drops-and-redelivers a fraction of the victim's sends
	// with a retransmit penalty below the deadline: the collective must
	// complete, unaborted and byte-perfect, with redeliveries counted.
	RankDropStorm RankFault = "drop-storm"
	// RankCrashBrownout combines a mid-collective crash with a storage
	// brownout: recovery must ride out both fault planes at once.
	RankCrashBrownout RankFault = "crash-brownout"
	// RankCrashRead kills the victim at round 2 of a collective read; the
	// rerun has no journal to consult (reads are idempotent) but must
	// still deliver every byte through the reassigned realms.
	RankCrashRead RankFault = "crash-mid-read"
)

// Rank-chaos timing: the collective deadline, the straggler stall (far
// beyond it), and the drop redelivery penalty (safely below it). The
// deadline must clear the legitimate per-round skew — aggregators do file
// I/O while pure clients idle, a resume lets some aggregators skip
// journalled rounds others replay, and a brownout inflates every round —
// so it sits well above the worst healthy round and well below the stall.
const (
	rankDeadline = sim.Time(50e-3)
	rankStall    = sim.Time(1.0)
	rankDropPen  = sim.Time(3e-4)
)

// RankScenario is one deterministic rank-failure experiment: inject the
// fault, watch the collective abort in agreement (or complete, for
// drop-storm), then revive and resume, and require the final file to be
// byte-identical to a fault-free run.
type RankScenario struct {
	// Engine selects the collective: "core-nb", "core-a2a", or
	// "twophase". The flexio engines recover by realm reassignment; the
	// baseline can only re-run under its fixed domains.
	Engine string
	// Fault is the rank-level injection pattern.
	Fault RankFault
	// Victim is the rank the fault targets.
	Victim int
	// CbNodes caps the aggregator count (0 = every rank aggregates).
	// Killing a rank at or above it exercises the journal's same-epoch
	// skip path: a dead pure client moves no realms.
	CbNodes int
	// Seed drives the drop-rule probability coins.
	Seed int64
	// Preagg enables node-local pre-aggregation on the engine under test,
	// so leader and member crashes exercise the two-level exchange's
	// failover: the resume elects the next live co-resident leader.
	Preagg bool
}

// Name is a stable identifier for logs, subtests, and artifact file names.
func (s RankScenario) Name() string {
	n := fmt.Sprintf("%s-%s-v%d", s.Engine, s.Fault, s.Victim)
	if s.CbNodes > 0 {
		n += fmt.Sprintf("-cb%d", s.CbNodes)
	}
	if s.Preagg {
		n += "-pre"
	}
	return n
}

// read reports whether the scenario transfers in the read direction.
func (s RankScenario) read() bool { return s.Fault == RankCrashRead }

// crashes reports whether the victim's goroutine dies (as opposed to
// running late or dropping messages).
func (s RankScenario) crashes() bool {
	switch s.Fault {
	case RankCrashShuffle, RankCrashMid, RankCrashBrownout, RankCrashRead:
		return true
	}
	return false
}

// schedule builds the scenario's seeded rank-fault plan.
func (s RankScenario) schedule() *mpi.RankFaultSchedule {
	rf := mpi.NewRankFaultSchedule(s.Seed)
	switch s.Fault {
	case RankCrashShuffle:
		rf.Crash(s.Victim, 0)
	case RankCrashMid, RankCrashBrownout, RankCrashRead:
		rf.Crash(s.Victim, 2)
	case RankStraggler:
		rf.Stall(s.Victim, 1, rankStall)
	case RankDropStorm:
		rf.Drop(s.Victim, mpi.Any, 0.4, rankDropPen, 0)
	}
	return rf
}

// RankOutcome reports what one rank-chaos run observed across the faulted
// attempt and (when one happened) the recovery attempt.
type RankOutcome struct {
	Scenario RankScenario
	// AbortClass is the class the faulted attempt agreed on (ClassOK for
	// drop-storm, which must complete).
	AbortClass int64
	// Dead is the failed-rank set detection produced.
	Dead []int
	// Injected counts rank faults that fired.
	Injected int64
	// PreRounds is the journal's committed (agg, round) count at abort
	// time — the work recovery gets to keep when the epoch survives.
	PreRounds int64
	// Replayed / Skipped / Failovers / DeadlineTrips / Redelivered are
	// the merged failover counters after both attempts.
	Replayed, Skipped, Failovers, DeadlineTrips, Redelivered int64
	// Elapsed is the total virtual time across both attempts.
	Elapsed sim.Time
	Trace   *trace.Sink
	Metrics *metrics.Set
	// Comm is the rank×rank communication matrix accumulated across both
	// the faulted attempt and the resume.
	Comm *mpi.CommMatrix
	// Stats is the merged per-rank recorder.
	Stats *stats.Recorder
}

// Run executes the scenario and checks the failover invariants. The
// returned error is an invariant violation (nil means the scenario
// behaved); the Outcome is returned even on violation so the caller can
// export trace and flight artifacts.
func (s RankScenario) Run() (*RankOutcome, error) {
	wl := hpio.Pattern{Ranks: 4, RegionSize: 64, RegionCount: 32, Spacing: 64}
	cfg := sim.DefaultConfig()
	w := mpi.NewWorld(wl.Ranks, cfg)
	fs := pfs.NewFileSystem(cfg)
	const fname = "rankchaos.dat"

	// Reads verify against a file seeded through the trusted, fault-free
	// independent path — before any fault machinery is armed.
	if s.read() {
		seedErr := make(chan error, wl.Ranks)
		w.Run(func(p *mpi.Proc) {
			f, err := mpiio.Open(p, fs, fname, mpiio.Info{IndepMethod: mpiio.ListIO})
			if err != nil {
				seedErr <- err
				return
			}
			ft, disp := wl.Filetype(p.Rank())
			if err := f.SetView(disp, datatype.Bytes(1), ft); err != nil {
				seedErr <- err
				return
			}
			mt, _ := wl.Memtype()
			if err := f.WriteIndependent(wl.FillBuffer(p.Rank()), mt, wl.RegionCount); err != nil {
				seedErr <- err
				return
			}
			seedErr <- f.Close()
		})
		for i := 0; i < wl.Ranks; i++ {
			if err := <-seedErr; err != nil {
				return nil, fmt.Errorf("rankchaos: seeding %s: %w", s.Name(), err)
			}
		}
	}

	sink := w.EnableTracing(0)
	met := w.EnableMetrics()
	comm := w.EnableCommMatrix()
	w.SetNodeMap(mpi.BlockNodeMap(nodeRanks))
	w.ResetClocks()
	fs.ResetTiming()
	rf := s.schedule()
	w.SetRankFaults(rf)
	w.SetCollDeadline(rankDeadline)
	if s.Fault == RankCrashBrownout {
		sched := pfs.NewFaultSchedule(s.Seed)
		sched.AddBrownout(pfs.Brownout{OST: -1, Slowdown: 4, ExtraLatency: 1e-4})
		fs.SetFaultSchedule(sched)
	}

	journal := mpiio.NewWriteJournal()
	baseOpts := core.Options{Method: mpiio.DataSieve, Journal: journal, Preagg: s.Preagg}
	if s.Engine == "core-a2a" {
		baseOpts.Comm = core.Alltoallw
	}
	newColl := func() mpiio.Collective {
		if s.Engine == "twophase" {
			tw := twophase.NewJournaled(journal)
			if s.Preagg {
				tw.WithPreagg()
			}
			return tw
		}
		return core.New(baseOpts)
	}

	// attempt runs one collective transfer on every rank and returns the
	// per-rank results (nil error and false mismatch for a rank whose
	// goroutine the fault killed mid-call).
	attempt := func(coll mpiio.Collective) ([]error, []bool) {
		errs := make([]error, wl.Ranks)
		mism := make([]bool, wl.Ranks)
		w.Run(func(p *mpi.Proc) {
			f, err := mpiio.Open(p, fs, fname, mpiio.Info{
				Collective:  coll,
				CollBufSize: 1024,
				CbNodes:     s.CbNodes,
			})
			if err != nil {
				errs[p.Rank()] = err
				return
			}
			ft, disp := wl.Filetype(p.Rank())
			if err := f.SetView(disp, datatype.Bytes(1), ft); err != nil {
				errs[p.Rank()] = err
				return
			}
			mt, bufLen := wl.Memtype()
			if s.read() {
				buf := make([]byte, bufLen)
				if err := f.ReadAll(buf, mt, wl.RegionCount); err != nil {
					errs[p.Rank()] = err
				} else {
					got, _ := datatype.Pack(buf, mt, 0, wl.RegionCount)
					exp, _ := datatype.Pack(wl.FillBuffer(p.Rank()), mt, 0, wl.RegionCount)
					mism[p.Rank()] = !bytes.Equal(got, exp)
				}
			} else {
				errs[p.Rank()] = f.WriteAll(wl.FillBuffer(p.Rank()), mt, wl.RegionCount)
			}
			f.Close()
		})
		return errs, mism
	}

	finish := func() *RankOutcome {
		m := met.Merged()
		return &RankOutcome{
			Scenario:      s,
			Injected:      rf.Injected(),
			Replayed:      m.Counter(metrics.CRoundsReplayed),
			Skipped:       m.Counter(metrics.CRoundsSkipped),
			Failovers:     m.Counter(metrics.CFailovers),
			DeadlineTrips: m.Counter(metrics.CDeadlineTrips),
			Redelivered:   m.Counter(metrics.CRedelivered),
			Elapsed:       w.MaxClock(),
			Trace:         sink,
			Metrics:       met,
			Comm:          comm,
			Stats:         stats.Merge(w.Recorders()...),
		}
	}

	errs, mism := attempt(newColl())

	// Drop-storm is a latency fault: the collective must complete in one
	// attempt with the redeliveries on the books.
	if s.Fault == RankDropStorm {
		out := finish()
		out.AbortClass = mpiio.ClassOK
		for r, err := range errs {
			if err != nil {
				return out, fmt.Errorf("rank %d aborted under drop-storm: %v", r, err)
			}
		}
		if out.Injected == 0 || out.Redelivered == 0 {
			return out, fmt.Errorf("drop schedule never fired (injected=%d redelivered=%d)",
				out.Injected, out.Redelivered)
		}
		return out, s.verifyData(fs, fname, wl, mism)
	}

	// Every other fault must abort the faulted attempt: survivors agree on
	// the unresponsive class, the victim is detected, and no rank hangs
	// (w.Run returning at all proves the latter).
	dead := w.FailedRanks()
	out := finish()
	out.Dead = dead
	out.PreRounds = journal.Rounds()
	if len(dead) == 0 {
		return out, fmt.Errorf("no failed rank detected")
	}
	victimDetected := false
	for _, d := range dead {
		if d == s.Victim {
			victimDetected = true
		}
	}
	if !victimDetected {
		return out, fmt.Errorf("victim %d not in detected dead set %v", s.Victim, dead)
	}
	isDead := func(r int) bool {
		for _, d := range dead {
			if d == r {
				return true
			}
		}
		return false
	}
	out.AbortClass = mpiio.ClassUnresponsive
	for r, err := range errs {
		if isDead(r) && s.crashes() {
			continue // the victim's goroutine never returned
		}
		if err == nil {
			return out, fmt.Errorf("rank %d completed despite the fault", r)
		}
		if c := mpiio.ErrorClass(err); c != mpiio.ClassUnresponsive {
			return out, fmt.Errorf("rank %d aborted with class %s, want unresponsive (%v)",
				r, mpiio.ClassName(c), err)
		}
	}
	if out.DeadlineTrips == 0 {
		return out, fmt.Errorf("deadline_trips stayed zero across an unresponsive abort")
	}

	// Recovery: revive the world (the crashed process restarts and
	// rejoins), demote the dead ranks from aggregator duty, and resume.
	// The journal lets same-epoch reruns skip the rounds already durable.
	w.ReviveAll()
	var resume mpiio.Collective
	if s.Engine == "twophase" {
		journal.MarkResume(dead)
		tw := twophase.NewJournaled(journal)
		if s.Preagg {
			tw.WithPreagg()
		}
		resume = tw
	} else {
		resume = core.ResumeCollective(baseOpts, journal, dead)
	}
	errs, mism = attempt(resume)
	for r, err := range errs {
		if err != nil {
			return out, fmt.Errorf("rank %d failed on resume: %v", r, err)
		}
	}

	// Refresh the counters now that the resume ran.
	fin := finish()
	fin.AbortClass = out.AbortClass
	fin.Dead = out.Dead
	fin.PreRounds = out.PreRounds
	out = fin

	if out.Failovers == 0 {
		return out, fmt.Errorf("resume recorded no failover")
	}
	if !s.read() {
		if out.Replayed+out.Skipped == 0 {
			return out, fmt.Errorf("resume journalled no rounds (replayed=%d skipped=%d)",
				out.Replayed, out.Skipped)
		}
		// The same-epoch skip path: a dead pure client moves no realms, so
		// everything committed before the crash must be reused, and a
		// mid-collective crash must have committed something.
		if s.Fault == RankCrashMid && s.CbNodes > 0 && s.Victim >= s.CbNodes {
			if out.PreRounds == 0 {
				return out, fmt.Errorf("mid-collective crash committed no rounds before dying")
			}
			if out.Skipped == 0 {
				return out, fmt.Errorf("client-victim resume replayed everything (skipped=0, pre=%d)",
					out.PreRounds)
			}
		}
	}
	return out, s.verifyData(fs, fname, wl, mism)
}

// verifyData checks byte-identity with a fault-free run: the file image
// against the workload's independent reference (writes), or the per-rank
// read-back buffers (reads).
func (s RankScenario) verifyData(fs *pfs.FileSystem, fname string, wl hpio.Pattern, mism []bool) error {
	if s.read() {
		for r, bad := range mism {
			if bad {
				return fmt.Errorf("rank %d: read-back data mismatch after recovery", r)
			}
		}
		return nil
	}
	img := fs.Snapshot(fname, wl.FileSize())
	ref := wl.Reference()
	for i := range ref {
		if img[i] != ref[i] {
			return fmt.Errorf("file byte %d = %d, want %d (not byte-identical to fault-free run)",
				i, img[i], ref[i])
		}
	}
	return nil
}

// RankMatrix enumerates the rank-failure grid: every engine against every
// rank-fault pattern, with both aggregator and pure-client victims for the
// mid-collective crash (the latter exercises the journal's same-epoch skip
// path). Seeds are a deterministic function of the scenario index.
func RankMatrix() []RankScenario {
	var ms []RankScenario
	i := int64(0)
	add := func(engine string, f RankFault, victim, cb int) {
		i++
		ms = append(ms, RankScenario{
			Engine: engine, Fault: f, Victim: victim, CbNodes: cb, Seed: 7000 + i,
		})
	}
	for _, e := range []string{"core-nb", "core-a2a", "twophase"} {
		add(e, RankCrashShuffle, 1, 0)
		add(e, RankCrashMid, 1, 0)  // aggregator victim: realms move, fresh epoch
		add(e, RankCrashMid, 3, 2)  // pure-client victim: same epoch, journal skips
		add(e, RankStraggler, 2, 0) // aggregator running late, not dead
		add(e, RankDropStorm, 1, 0)
		add(e, RankCrashBrownout, 1, 0) // rank + storage fault planes composed
	}
	add("core-nb", RankCrashRead, 1, 0)
	add("core-a2a", RankCrashRead, 1, 0)
	// Pre-aggregation failover: nodes span nodeRanks consecutive ranks, so
	// rank 0 leads node 0 and rank 1 is its member. A leader crash forces
	// the resume to elect the next live co-resident (PlanNode excludes the
	// dead set); a member crash aborts through the leader's seeded error.
	pre := func(engine string, f RankFault, victim int) {
		i++
		ms = append(ms, RankScenario{
			Engine: engine, Fault: f, Victim: victim, Seed: 7000 + i, Preagg: true,
		})
	}
	for _, e := range []string{"core-nb", "core-a2a", "twophase"} {
		pre(e, RankCrashMid, 0)     // leader dies mid-rounds
		pre(e, RankCrashShuffle, 1) // member dies before any round data
	}
	pre("core-nb", RankCrashRead, 0) // leader dies mid-read: scatter must abort uniformly
	return ms
}

// RankQuick is the short-mode subset: one scenario per rank-fault pattern.
func RankQuick() []RankScenario {
	seen := map[RankFault]bool{}
	var qs []RankScenario
	for _, s := range RankMatrix() {
		if !seen[s.Fault] {
			seen[s.Fault] = true
			qs = append(qs, s)
		}
	}
	return qs
}

// ParseRankSpec parses "fault:victim[:cbnodes]" (e.g. "crash-mid-rounds:1"
// or "crash-mid-rounds:3:2") into a scenario for the given engine.
func ParseRankSpec(engine, spec string, seed int64) (RankScenario, error) {
	parts := strings.Split(spec, ":")
	s := RankScenario{Engine: engine, Seed: seed, Victim: 1}
	switch RankFault(parts[0]) {
	case RankCrashShuffle, RankCrashMid, RankStraggler, RankDropStorm,
		RankCrashBrownout, RankCrashRead:
		s.Fault = RankFault(parts[0])
	default:
		return s, fmt.Errorf("unknown rank fault %q (want one of %s, %s, %s, %s, %s, %s)",
			parts[0], RankCrashShuffle, RankCrashMid, RankStraggler,
			RankDropStorm, RankCrashBrownout, RankCrashRead)
	}
	if len(parts) > 1 {
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return s, fmt.Errorf("bad victim %q: %w", parts[1], err)
		}
		s.Victim = v
	}
	if len(parts) > 2 {
		cb, err := strconv.Atoi(parts[2])
		if err != nil {
			return s, fmt.Errorf("bad cbnodes %q: %w", parts[2], err)
		}
		s.CbNodes = cb
	}
	return s, nil
}

// RankSoak runs the rank-failure scenarios, logging one line each via
// logf. Every scenario exports its Chrome trace and canonical flight dump
// into traceDir (when non-empty) as <name>.trace.json / <name>.flight.json
// — rank chaos always leaves artifacts, because the interesting runs are
// the ones that recovered. Each also writes <name>.report.txt, the run's
// differential report (faulted attempt plus recovery) against a fault-free
// single-attempt baseline of the same engine and direction. It returns the
// number of invariant violations.
func RankSoak(scenarios []RankScenario, traceDir string, logf func(format string, args ...any)) int {
	failures := 0
	bl := baselines{}
	for _, s := range scenarios {
		out, err := s.Run()
		status := "ok"
		if err != nil {
			failures++
			status = "FAIL: " + err.Error()
		}
		if out == nil {
			logf("%-40s %s", s.Name(), status)
			continue
		}
		logf("%-40s class=%-12s dead=%-8v trips=%-3d replay=%-3d skip=%-3d redeliver=%-3d t=%8.3fms  %s",
			s.Name(), mpiio.ClassName(out.AbortClass), out.Dead, out.DeadlineTrips,
			out.Replayed, out.Skipped, out.Redelivered, float64(out.Elapsed)*1e3, status)
		if traceDir == "" {
			continue
		}
		if out.Trace != nil {
			path := traceDir + "/" + s.Name() + ".trace.json"
			if werr := out.Trace.WriteChromeTraceFile(path); werr != nil {
				logf("  trace export failed: %v", werr)
			}
			path = traceDir + "/" + s.Name() + ".critpath.txt"
			if werr := writeCritPathFile(out.Trace, path); werr != nil {
				logf("  critpath export failed: %v", werr)
			}
		}
		if out.Metrics != nil {
			path := traceDir + "/" + s.Name() + ".flight.json"
			if werr := writeFlightFile(out.Metrics, path); werr != nil {
				logf("  flight export failed: %v", werr)
			}
		}
		if out.Comm != nil {
			path := traceDir + "/" + s.Name() + ".comm.json"
			if werr := writeCommFile(out.Comm, path); werr != nil {
				logf("  comm export failed: %v", werr)
			}
		}
		if out.Metrics != nil {
			// The baseline shares the engine, direction, and 4-rank chaos
			// tile; rank scenarios run the core methods' default sieve.
			base := Scenario{Engine: s.Engine, Write: !s.read(), Method: mpiio.DataSieve, Seed: 1}
			path := traceDir + "/" + s.Name() + ".report.txt"
			if werr := writeReportFile(bl.source(base), out.Metrics, s.Name(), path); werr != nil {
				logf("  report export failed: %v", werr)
			}
		}
	}
	return failures
}
