package chaos

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTenantMatrix runs every multi-tenant scenario (the quick subset in
// short mode) and requires every invariant to hold.
func TestTenantMatrix(t *testing.T) {
	scenarios := TenantMatrix()
	if testing.Short() {
		scenarios = TenantQuick()
	}
	for _, s := range scenarios {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			out, err := s.Run()
			if err != nil {
				t.Fatalf("invariant violated: %v", err)
			}
			if out == nil {
				t.Fatal("no outcome")
			}
			if len(out.Prom) == 0 {
				t.Fatal("empty exposition")
			}
			if len(out.Stats) < 2 {
				t.Fatalf("scenario hosted %d tenants, want >= 2", len(out.Stats))
			}
		})
	}
}

// TestTenantMatrixShape pins the matrix floor: at least ten scenarios and
// all three engines exercised.
func TestTenantMatrixShape(t *testing.T) {
	ms := TenantMatrix()
	if len(ms) < 10 {
		t.Fatalf("matrix has %d scenarios, want >= 10", len(ms))
	}
	engines := map[string]bool{}
	names := map[string]bool{}
	for _, s := range ms {
		engines[s.Engine] = true
		if names[s.Name()] {
			t.Fatalf("duplicate scenario name %q", s.Name())
		}
		names[s.Name()] = true
	}
	for _, e := range []string{"core-nb", "core-a2a", "twophase"} {
		if !engines[e] {
			t.Fatalf("matrix never uses engine %q", e)
		}
	}
}

// TestTenantSoakArtifacts runs one scenario through the soak driver and
// checks the per-tenant artifacts land on disk.
func TestTenantSoakArtifacts(t *testing.T) {
	dir := t.TempDir()
	s := TenantScenario{Kind: TKindErrorStorm, Engine: "core-nb", Seed: 7001}
	if n := TenantSoak([]TenantScenario{s}, dir, t.Logf); n != 0 {
		t.Fatalf("soak reported %d failures", n)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var flights, critpaths int
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".flight.json") {
			flights++
		}
		if strings.HasSuffix(ent.Name(), ".critpath.txt") {
			critpaths++
		}
		fi, err := ent.Info()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("artifact %s is empty", ent.Name())
		}
	}
	// Both tenants ran traced jobs, so both kinds of artifact exist per
	// tenant.
	if flights < 2 || critpaths < 2 {
		t.Fatalf("got %d flight and %d critpath artifacts in %s, want >= 2 each",
			flights, critpaths, filepath.Base(dir))
	}
}
