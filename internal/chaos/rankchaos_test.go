package chaos

import (
	"bytes"
	"os"
	"testing"

	"flexio/internal/mpiio"
	"flexio/internal/stats"
)

// TestRankChaosMatrix runs the seeded rank-failure grid (the short-mode
// subset covers one scenario per fault pattern) and asserts the failover
// invariants: collective agreement on the unresponsive class, victim
// detection, no hang, journal-driven replay, and byte-identical recovery.
// On violation the scenario's artifacts are exported to $CHAOS_TRACE_DIR
// when set, so CI can attach them.
func TestRankChaosMatrix(t *testing.T) {
	scenarios := RankMatrix()
	if testing.Short() {
		scenarios = RankQuick()
	}
	traceDir := os.Getenv("CHAOS_TRACE_DIR")
	for _, s := range scenarios {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			out, err := s.Run()
			if err != nil {
				if traceDir != "" && out != nil {
					if out.Trace != nil {
						path := traceDir + "/" + s.Name() + ".trace.json"
						if werr := out.Trace.WriteChromeTraceFile(path); werr == nil {
							t.Logf("chrome trace written to %s", path)
						}
					}
					if out.Metrics != nil {
						path := traceDir + "/" + s.Name() + ".flight.json"
						if werr := writeFlightFile(out.Metrics, path); werr == nil {
							t.Logf("flight recorder written to %s", path)
						}
					}
				}
				t.Fatal(err)
			}
		})
	}
}

// TestRankChaosJournalPaths pins the two recovery modes side by side: an
// aggregator victim moves realms (fresh journal epoch, full replay) while
// a pure-client victim keeps them (same epoch, committed rounds skipped).
func TestRankChaosJournalPaths(t *testing.T) {
	agg := RankScenario{Engine: "core-nb", Fault: RankCrashMid, Victim: 1, Seed: 21}
	out, err := agg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.PreRounds == 0 {
		t.Error("aggregator victim: nothing journalled before the crash")
	}
	if out.Skipped != 0 {
		t.Errorf("aggregator victim moved realms; resume must replay everything, skipped %d", out.Skipped)
	}
	if out.Replayed == 0 {
		t.Error("aggregator victim: resume replayed nothing")
	}

	client := RankScenario{Engine: "core-nb", Fault: RankCrashMid, Victim: 3, CbNodes: 2, Seed: 22}
	out, err = client.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Skipped == 0 {
		t.Errorf("client victim kept realms; resume must skip the %d committed rounds", out.PreRounds)
	}
}

// TestRankChaosDeterministic: for a fixed seed, the whole
// fault-detect-revive-resume cycle must reproduce exactly — including the
// canonical flight dump, byte for byte, which is what lets a CI rank-chaos
// artifact be diffed against a local reproduction.
func TestRankChaosDeterministic(t *testing.T) {
	for _, s := range []RankScenario{
		{Engine: "core-nb", Fault: RankCrashMid, Victim: 1, Seed: 31},
		{Engine: "core-a2a", Fault: RankStraggler, Victim: 2, Seed: 32},
		{Engine: "twophase", Fault: RankCrashMid, Victim: 3, CbNodes: 2, Seed: 33},
		{Engine: "core-nb", Fault: RankDropStorm, Victim: 1, Seed: 34},
	} {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			dumps := make([][]byte, 2)
			var first *RankOutcome
			for i := range dumps {
				out, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					first = out
				} else {
					if out.AbortClass != first.AbortClass || out.Injected != first.Injected ||
						out.Replayed != first.Replayed || out.Skipped != first.Skipped ||
						out.DeadlineTrips != first.DeadlineTrips || out.Redelivered != first.Redelivered {
						t.Errorf("outcome not deterministic:\nrun1 %+v\nrun2 %+v", first, out)
					}
				}
				var buf bytes.Buffer
				if err := out.Metrics.Dump(false).WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				dumps[i] = buf.Bytes()
			}
			if !bytes.Equal(dumps[0], dumps[1]) {
				t.Errorf("canonical flight dumps differ between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
					dumps[0], dumps[1])
			}
			// Resumed scenarios must surface the failover in the canonical
			// dump (it is deterministic, so it belongs there).
			if s.Fault != RankDropStorm {
				d := out0Dump(t, dumps[0])
				if d.Failover == nil {
					t.Fatal("canonical dump carries no failover event")
				}
				if len(d.Failover.DeadRanks) == 0 {
					t.Error("failover event names no dead ranks")
				}
			}
		})
	}
}

// TestParseRankSpec pins the cmd-facing spec syntax.
func TestParseRankSpec(t *testing.T) {
	s, err := ParseRankSpec("core-nb", "crash-mid-rounds:3:2", 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Fault != RankCrashMid || s.Victim != 3 || s.CbNodes != 2 || s.Engine != "core-nb" {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := ParseRankSpec("core-nb", "no-such-fault:1", 5); err == nil {
		t.Fatal("want error for unknown fault")
	}
	if _, err := ParseRankSpec("core-nb", "straggler:x", 5); err == nil {
		t.Fatal("want error for bad victim")
	}
}

// TestRankSoakQuick drives the soak entry point end to end, checking it
// reports zero violations and leaves both artifact kinds for every
// scenario (rank chaos always exports — the interesting runs are the ones
// that recovered).
func TestRankSoakQuick(t *testing.T) {
	dir := t.TempDir()
	scenarios := RankQuick()
	if n := RankSoak(scenarios, dir, t.Logf); n != 0 {
		t.Fatalf("%d rank-chaos violations", n)
	}
	for _, s := range scenarios {
		for _, suffix := range []string{".trace.json", ".flight.json", ".critpath.txt", ".comm.json"} {
			if _, err := os.Stat(dir + "/" + s.Name() + suffix); err != nil {
				t.Errorf("missing artifact: %v", err)
			}
		}
	}
}

// TestRankChaosComposesStorageFaults pins the combined fault plane: the
// brownout slows storage (visible in the stats) while the crash kills the
// rank, and recovery still converges byte-identically.
func TestRankChaosComposesStorageFaults(t *testing.T) {
	s := RankScenario{Engine: "core-nb", Fault: RankCrashBrownout, Victim: 1, Seed: 41}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.AbortClass != mpiio.ClassUnresponsive {
		t.Errorf("abort class %s, want unresponsive", mpiio.ClassName(out.AbortClass))
	}
	if out.Stats.Counter(stats.CBrownoutServes) == 0 {
		t.Error("brownout never served a slowed request")
	}
}
