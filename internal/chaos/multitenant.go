package chaos

import (
	"bytes"
	"errors"
	"fmt"

	"flexio/internal/analyze"
	"flexio/internal/hpio"
	"flexio/internal/metrics"
	"flexio/internal/mpiio"
	"flexio/internal/pfs"
	"flexio/internal/report"
	"flexio/internal/sim"
	"flexio/internal/tenant"
)

// Multi-tenant chaos: scenarios that host several tenants on one shared
// file system through the tenant service and hurt one of them, asserting
// that the service's protections hold:
//
//   - Survivor integrity: tenants that were not targeted end the scenario
//     with files byte-identical to a fault-free solo run.
//   - Breaker discipline: injected damage trips the targeted OST breakers,
//     open breakers route onto the degraded paths, and the trip counts are
//     visible in the Prometheus exposition.
//   - Admission honesty: shed and rejected work carries typed
//     ErrAdmissionRejected errors, and the counts in TenantStats match the
//     exposition exactly.
//
// Scenarios are deterministic: jobs run inline in submission order, service
// time is logical ticks, and fault rules are scoped by file name so each
// phase is a pure function of the submitted sequence.

// Tenant scenario kinds.
const (
	// TKindErrorStorm aborts the noisy tenant's sieve writes with hard
	// errors; the victim must keep writing through the open breaker.
	TKindErrorStorm = "error-storm"
	// TKindReadAfterStorm is TKindErrorStorm with the victim reading back
	// previously written data while the breaker is open.
	TKindReadAfterStorm = "read-after-storm"
	// TKindBrownout slows one OST under the noisy tenant until the slow
	// counts trip its breaker; nobody errors, the victim stays intact.
	TKindBrownout = "brownout-neighbor"
	// TKindRevokeStorm charges lock-revoke storms to the noisy tenant's
	// grants until the revoke counts trip a breaker.
	TKindRevokeStorm = "revoke-storm"
	// TKindAdmissionBurst exhausts a tenant's token bucket with a burst;
	// the excess must shed with typed errors, the other tenant unharmed.
	TKindAdmissionBurst = "admission-burst"
	// TKindDeadlineShed queues work behind an empty bucket until the queue
	// deadline sheds it.
	TKindDeadlineShed = "deadline-shed"
	// TKindFairShare queues one job per tenant and asserts the weighted
	// fair-share release order via last-writer-wins on a shared file.
	TKindFairShare = "fair-share"
	// TKindHalfOpen drives one breaker through the full trip cycle:
	// open, cooldown, half-open probe, closed.
	TKindHalfOpen = "half-open-recovery"
	// TKindInterferenceSoak runs several rounds of a bullying tenant, a
	// token-limited tenant, and a light tenant together, then checks the
	// noisy-neighbor analyzer fires on the resulting usage.
	TKindInterferenceSoak = "interference-soak"
)

// TenantScenario is one deterministic multi-tenant chaos experiment.
type TenantScenario struct {
	// Kind is the interference pattern (TKind constants).
	Kind string
	// Engine is the collective every tenant job runs ("core-nb",
	// "core-a2a", or "twophase").
	Engine string
	// Seed drives the fault schedule's probability coins.
	Seed int64
}

// Name is a stable identifier for logs, subtests, and artifact file names.
func (s TenantScenario) Name() string { return "tenant-" + s.Kind + "-" + s.Engine }

// TenantOutcome reports what one multi-tenant scenario observed.
type TenantOutcome struct {
	Scenario TenantScenario
	// Stats is the final per-tenant accounting, registration order.
	Stats []tenant.Stats
	// Breakers is the final per-OST breaker status.
	Breakers []tenant.BreakerStatus
	// Findings is the tenant analyzer's verdict on the final usage.
	Findings []analyze.Finding
	// Prom is the parsed Prometheus exposition of the final state.
	Prom map[string]float64
	// Injected counts faults the schedule fired.
	Injected int64
	// Service is the live service, for artifact export.
	Service *tenant.Service
}

// Access tiles. The noisy tile is several times the victim tile so
// interference scenarios generate a byte-dominant tenant.
var (
	noisyTile  = hpio.Pattern{Ranks: 4, RegionSize: 256, RegionCount: 16, Spacing: 256}
	victimTile = hpio.Pattern{Ranks: 2, RegionSize: 64, RegionCount: 8, Spacing: 64}
)

// tenantEnv is one scenario's world: a shared file system with a fault
// schedule, and the service hosting the tenants.
type tenantEnv struct {
	s     TenantScenario
	cfg   *sim.Config
	fs    *pfs.FileSystem
	svc   *tenant.Service
	sched *pfs.FaultSchedule
}

// sieveHardOn returns a rule failing file's sieve writes with hard errors:
// the noisy tenant aborts (or degrades) while everyone else's files never
// match.
func sieveHardOn(file string) pfs.Rule {
	return pfs.Rule{Name: file, Kind: "write", Class: pfs.ClassIO,
		Match: func(op pfs.Op) bool { return op.Sieve }}
}

// setup builds the scenario's environment: breaker thresholds and the fault
// plan vary by kind, everything else is shared.
func (s TenantScenario) setup() (*tenantEnv, error) {
	e := &tenantEnv{s: s, cfg: sim.DefaultConfig()}
	e.fs = pfs.NewFileSystem(e.cfg)
	e.sched = pfs.NewFaultSchedule(s.Seed)

	var brk tenant.BreakerConfig
	switch s.Kind {
	case TKindErrorStorm, TKindReadAfterStorm, TKindHalfOpen, TKindInterferenceSoak:
		e.sched.Add(sieveHardOn("noisy.dat"))
	case TKindBrownout:
		brk.SlowTrip = 4
		e.sched.AddBrownout(pfs.Brownout{OST: 0, Slowdown: 8, ExtraLatency: 1e-4})
	case TKindRevokeStorm:
		brk.RevokeTrip = 8
		e.sched.AddStorm(pfs.RevokeStorm{PerGrant: 4})
	}
	e.fs.SetFaultSchedule(e.sched)

	svc, err := tenant.NewService(tenant.Config{FS: e.fs, Sim: e.cfg, Breakers: brk})
	if err != nil {
		return nil, err
	}
	e.svc = svc
	return e, nil
}

// job builds a tenant job under the scenario's engine. Write jobs verify
// the file image against the pattern reference; read jobs verify the bytes
// read back.
func (e *tenantEnv) job(name, file string, wl hpio.Pattern, write bool) tenant.Job {
	return tenant.Job{
		Name: name, File: file, Engine: e.s.Engine, Write: write,
		Pattern: wl, CollBuf: 1024, Verify: true, Trace: true,
	}
}

// soloImage runs the job alone on a fresh fault-free file system and
// returns the resulting file image: the survivors' ground truth.
func (e *tenantEnv) soloImage(job tenant.Job) ([]byte, error) {
	fs := pfs.NewFileSystem(e.cfg)
	svc, err := tenant.NewService(tenant.Config{FS: fs, Sim: e.cfg})
	if err != nil {
		return nil, err
	}
	if _, err := svc.AddTenant("solo", tenant.Limits{}); err != nil {
		return nil, err
	}
	if err := svc.SubmitWait("solo", job); err != nil {
		return nil, fmt.Errorf("solo reference run of %s: %w", job.Name, err)
	}
	return fs.Snapshot(job.File, job.Pattern.FileSize()), nil
}

// survivorIdentical asserts the shared file system holds exactly the bytes
// a fault-free solo run of job would have produced.
func (e *tenantEnv) survivorIdentical(job tenant.Job) error {
	want, err := e.soloImage(job)
	if err != nil {
		return err
	}
	got := e.fs.Snapshot(job.File, job.Pattern.FileSize())
	if !bytes.Equal(got, want) {
		return fmt.Errorf("survivor file %s differs from fault-free solo run", job.File)
	}
	return nil
}

// stat returns the named tenant's final stats.
func stat(stats []tenant.Stats, name string) tenant.Stats {
	for _, st := range stats {
		if st.Name == name {
			return st
		}
	}
	return tenant.Stats{}
}

// Run executes the scenario and checks its invariants. The returned error
// is a violation (nil means the scenario behaved); the outcome is returned
// even on violation so the caller can export artifacts.
func (s TenantScenario) Run() (*TenantOutcome, error) {
	e, err := s.setup()
	if err != nil {
		return nil, err
	}
	var runErr error
	switch s.Kind {
	case TKindErrorStorm:
		runErr = e.runErrorStorm(false)
	case TKindReadAfterStorm:
		runErr = e.runErrorStorm(true)
	case TKindBrownout, TKindRevokeStorm:
		runErr = e.runSlowNeighbor()
	case TKindAdmissionBurst:
		runErr = e.runAdmissionBurst()
	case TKindDeadlineShed:
		runErr = e.runDeadlineShed()
	case TKindFairShare:
		runErr = e.runFairShare()
	case TKindHalfOpen:
		runErr = e.runHalfOpen()
	case TKindInterferenceSoak:
		runErr = e.runInterferenceSoak()
	default:
		return nil, fmt.Errorf("chaos: unknown tenant scenario kind %q", s.Kind)
	}
	out, err := e.outcome()
	if err != nil {
		return out, err
	}
	if runErr != nil {
		return out, runErr
	}
	return out, e.checkAccounting(out)
}

// outcome snapshots the final service state, exposition, and analysis.
func (e *tenantEnv) outcome() (*TenantOutcome, error) {
	out := &TenantOutcome{
		Scenario: e.s,
		Stats:    e.svc.TenantStats(),
		Breakers: e.svc.Breakers().Status(),
		Injected: e.sched.Injected(),
		Service:  e.svc,
	}
	var trips int64
	for _, b := range out.Breakers {
		trips += b.Trips
	}
	us := make([]analyze.TenantUsage, 0, len(out.Stats))
	for _, st := range out.Stats {
		us = append(us, analyze.TenantUsage{
			Name: st.Name, Ops: st.Ops, Bytes: st.Bytes,
			Shed: st.Shed(), Rejected: st.Rejected - st.Shed(),
			Degraded: st.Degraded, Trips: trips,
		})
	}
	out.Findings = analyze.TenantFindings(us)

	var buf bytes.Buffer
	if err := e.svc.WriteProm(&buf); err != nil {
		return out, fmt.Errorf("exposition write failed: %w", err)
	}
	samples, err := metrics.ParseProm(&buf)
	if err != nil {
		return out, fmt.Errorf("exposition does not round-trip: %w", err)
	}
	out.Prom = samples
	return out, nil
}

// checkAccounting cross-checks the exposition against the stats and breaker
// snapshots: every admission rejection and breaker trip the scenario
// asserted on must also be visible to a Prometheus scrape.
func (e *tenantEnv) checkAccounting(out *TenantOutcome) error {
	for _, st := range out.Stats {
		key := fmt.Sprintf(`flexio_tenant_rejected_total{tenant=%q}`, st.Name)
		if got := int64(out.Prom[key]); got != st.Rejected {
			return fmt.Errorf("exposition %s = %d, stats say %d", key, got, st.Rejected)
		}
	}
	for _, b := range out.Breakers {
		key := fmt.Sprintf(`flexio_ost_breaker_trips_total{ost="%d"}`, b.OST)
		if got := int64(out.Prom[key]); got != b.Trips {
			return fmt.Errorf("exposition %s = %d, breakers say %d", key, got, b.Trips)
		}
	}
	return nil
}

// tripsTotal sums breaker trips right now.
func (e *tenantEnv) tripsTotal() int64 {
	var n int64
	for _, b := range e.svc.Breakers().Status() {
		n += b.Trips
	}
	return n
}

// runErrorStorm: the noisy tenant's sieve writes fail hard. Its first job
// aborts and trips a breaker; the victim then runs through the open breaker
// (degraded), the noisy tenant's retry degrades and completes, and a clean
// probe closes the breaker.
func (e *tenantEnv) runErrorStorm(readBack bool) error {
	for _, name := range []string{"noisy", "victim"} {
		if _, err := e.svc.AddTenant(name, tenant.Limits{}); err != nil {
			return err
		}
	}
	victimWrite := e.job("victim-write", "victim.dat", victimTile, true)
	if readBack {
		// Seed the victim's file before the storm so the degraded phase
		// exercises the read path.
		if err := e.svc.SubmitWait("victim", victimWrite); err != nil {
			return fmt.Errorf("pre-storm victim write failed: %w", err)
		}
	}

	err := e.svc.SubmitWait("noisy", e.job("noisy-write", "noisy.dat", noisyTile, true))
	if err == nil {
		return errors.New("noisy job survived a hard sieve fault storm")
	}
	if !errors.Is(err, mpiio.ErrCollectiveAbort) {
		return fmt.Errorf("noisy job error does not wrap ErrCollectiveAbort: %v", err)
	}
	if !e.svc.Breakers().AnyOpen() {
		return errors.New("hard errors did not trip a breaker")
	}

	// The victim runs while the breaker is open: degraded, but intact.
	victimJob := victimWrite
	if readBack {
		victimJob = e.job("victim-read", "victim.dat", victimTile, false)
	}
	if err := e.svc.SubmitWait("victim", victimJob); err != nil {
		return fmt.Errorf("victim failed under open breaker: %w", err)
	}
	if st := stat(e.svc.TenantStats(), "victim"); st.Degraded == 0 {
		return errors.New("victim job under an open breaker was not counted degraded")
	}
	if err := e.survivorIdentical(victimWrite); err != nil {
		return err
	}

	// The noisy tenant retries: the open breaker routes it onto the
	// degraded path, which avoids (or falls back from) the poisoned sieve.
	if err := e.svc.SubmitWait("noisy", e.job("noisy-retry", "noisy.dat", noisyTile, true)); err != nil {
		return fmt.Errorf("noisy retry failed despite degraded routing: %w", err)
	}
	if err := e.survivorIdentical(e.job("noisy-retry", "noisy.dat", noisyTile, true)); err != nil {
		return err
	}

	// Cooldown, half-open, clean probe, closed.
	e.svc.Tick()
	e.svc.Tick()
	if err := e.svc.SubmitWait("victim", victimWrite); err != nil {
		return fmt.Errorf("half-open probe failed: %w", err)
	}
	for _, b := range e.svc.Breakers().Status() {
		if b.State != tenant.BreakerClosed {
			return fmt.Errorf("OST %d breaker ended %v, want closed", b.OST, b.State)
		}
	}
	if e.tripsTotal() == 0 {
		return errors.New("no breaker trips recorded")
	}
	return nil
}

// runSlowNeighbor: brownouts or revoke storms hurt the noisy tenant's OSTs
// without failing anything. The slow/revoke counts must still trip a
// breaker, and the victim must complete intact (degraded-routed).
func (e *tenantEnv) runSlowNeighbor() error {
	for _, name := range []string{"noisy", "victim"} {
		if _, err := e.svc.AddTenant(name, tenant.Limits{}); err != nil {
			return err
		}
	}
	if err := e.svc.SubmitWait("noisy", e.job("noisy-write", "noisy.dat", noisyTile, true)); err != nil {
		return fmt.Errorf("noisy job failed under %s (should only be slowed): %w", e.s.Kind, err)
	}
	if !e.svc.Breakers().AnyOpen() {
		return fmt.Errorf("%s did not trip a breaker", e.s.Kind)
	}
	victimJob := e.job("victim-write", "victim.dat", victimTile, true)
	if err := e.svc.SubmitWait("victim", victimJob); err != nil {
		return fmt.Errorf("victim failed under open breaker: %w", err)
	}
	if st := stat(e.svc.TenantStats(), "victim"); st.Degraded == 0 {
		return errors.New("victim job under an open breaker was not counted degraded")
	}
	if e.tripsTotal() == 0 {
		return errors.New("no breaker trips recorded")
	}
	return e.survivorIdentical(victimJob)
}

// runAdmissionBurst: a token-limited tenant bursts past its bucket. The
// excess sheds immediately with typed errors; the other tenant is unharmed.
func (e *tenantEnv) runAdmissionBurst() error {
	if _, err := e.svc.AddTenant("burst", tenant.Limits{Tokens: 2, Refill: -1}); err != nil {
		return err
	}
	if _, err := e.svc.AddTenant("victim", tenant.Limits{}); err != nil {
		return err
	}
	burstJob := e.job("burst-write", "burst.dat", victimTile, true)
	var ran, shed int
	for i := 0; i < 5; i++ {
		err := e.svc.SubmitWait("burst", burstJob)
		switch {
		case err == nil:
			ran++
		case errors.Is(err, tenant.ErrAdmissionRejected):
			var ae *tenant.AdmissionError
			if !errors.As(err, &ae) || ae.Reason != tenant.RejectQueueFull {
				return fmt.Errorf("shed job carries %v, want queue-full AdmissionError", err)
			}
			shed++
		default:
			return fmt.Errorf("burst job %d failed oddly: %w", i, err)
		}
	}
	if ran != 2 || shed != 3 {
		return fmt.Errorf("burst of 5 against 2 tokens: %d ran, %d shed; want 2/3", ran, shed)
	}
	if st := stat(e.svc.TenantStats(), "burst"); st.Rejected != 3 || st.ShedQueueFull != 3 {
		return fmt.Errorf("burst stats rejected=%d shedQueueFull=%d, want 3/3", st.Rejected, st.ShedQueueFull)
	}
	victimJob := e.job("victim-write", "victim.dat", victimTile, true)
	if err := e.svc.SubmitWait("victim", victimJob); err != nil {
		return fmt.Errorf("victim failed during a neighbor's burst: %w", err)
	}
	return e.survivorIdentical(victimJob)
}

// runDeadlineShed: jobs queued behind an empty, non-refilling bucket age
// out at the queue deadline.
func (e *tenantEnv) runDeadlineShed() error {
	lim := tenant.Limits{Tokens: 1, Refill: -1, QueueDepth: 4, DeadlineTicks: 2}
	if _, err := e.svc.AddTenant("slow", lim); err != nil {
		return err
	}
	if _, err := e.svc.AddTenant("victim", tenant.Limits{}); err != nil {
		return err
	}
	slowJob := e.job("slow-write", "slow.dat", victimTile, true)
	if err := e.svc.SubmitWait("slow", slowJob); err != nil {
		return fmt.Errorf("first slow job (token available) failed: %w", err)
	}
	p1, err := e.svc.Submit("slow", slowJob)
	if err != nil {
		return err
	}
	p2, err := e.svc.Submit("slow", slowJob)
	if err != nil {
		return err
	}
	e.svc.Tick()
	e.svc.Tick()
	for i, p := range []*tenant.Pending{p1, p2} {
		werr := p.Wait()
		var ae *tenant.AdmissionError
		if !errors.As(werr, &ae) || ae.Reason != tenant.RejectDeadline {
			return fmt.Errorf("queued job %d ended %v, want deadline AdmissionError", i, werr)
		}
	}
	if st := stat(e.svc.TenantStats(), "slow"); st.ShedDeadline != 2 {
		return fmt.Errorf("ShedDeadline = %d, want 2", st.ShedDeadline)
	}
	key := `flexio_tenant_shed_total{tenant="slow",reason="deadline"}`
	var buf bytes.Buffer
	if err := e.svc.WriteProm(&buf); err != nil {
		return err
	}
	samples, err := metrics.ParseProm(&buf)
	if err != nil {
		return err
	}
	if int64(samples[key]) != 2 {
		return fmt.Errorf("exposition %s = %v, want 2", key, samples[key])
	}
	victimJob := e.job("victim-write", "victim.dat", victimTile, true)
	if err := e.svc.SubmitWait("victim", victimJob); err != nil {
		return fmt.Errorf("victim failed while neighbor queue aged out: %w", err)
	}
	return e.survivorIdentical(victimJob)
}

// runFairShare: both tenants queue one write to the same file behind empty
// buckets. After a refill tick the light (high-weight) tenant must release
// first, so the heavy tenant's bytes win last-writer-wins — asserted by
// replaying that order fault-free and comparing images.
func (e *tenantEnv) runFairShare() error {
	lim := tenant.Limits{Tokens: 1, QueueDepth: 2, Weight: 1}
	if _, err := e.svc.AddTenant("heavy", lim); err != nil {
		return err
	}
	lim.Weight = 4
	if _, err := e.svc.AddTenant("light", lim); err != nil {
		return err
	}
	heavyShared := e.job("heavy-shared", "shared.dat", noisyTile, true)
	lightShared := e.job("light-shared", "shared.dat", victimTile, true)
	heavyShared.Verify = false // shared file: the image is an overlay
	lightShared.Verify = false

	// Spend both buckets (and build up the heavy tenant's consumed-byte
	// cost) on private files, then queue the shared writes.
	if err := e.svc.SubmitWait("heavy", e.job("heavy-warm", "heavy.dat", noisyTile, true)); err != nil {
		return err
	}
	if err := e.svc.SubmitWait("light", e.job("light-warm", "light.dat", victimTile, true)); err != nil {
		return err
	}
	ph, err := e.svc.Submit("heavy", heavyShared)
	if err != nil {
		return err
	}
	pl, err := e.svc.Submit("light", lightShared)
	if err != nil {
		return err
	}
	e.svc.Tick() // refill both buckets; drain in fair-share order
	if err := ph.Wait(); err != nil {
		return fmt.Errorf("heavy shared write failed: %w", err)
	}
	if err := pl.Wait(); err != nil {
		return fmt.Errorf("light shared write failed: %w", err)
	}

	// Replay the expected order (light first, heavy second) fault-free and
	// demand byte identity.
	fs := pfs.NewFileSystem(e.cfg)
	svc, err := tenant.NewService(tenant.Config{FS: fs, Sim: e.cfg})
	if err != nil {
		return err
	}
	if _, err := svc.AddTenant("replay", tenant.Limits{}); err != nil {
		return err
	}
	if err := svc.SubmitWait("replay", lightShared); err != nil {
		return err
	}
	if err := svc.SubmitWait("replay", heavyShared); err != nil {
		return err
	}
	size := noisyTile.FileSize()
	if sz := victimTile.FileSize(); sz > size {
		size = sz
	}
	if !bytes.Equal(e.fs.Snapshot("shared.dat", size), fs.Snapshot("shared.dat", size)) {
		return errors.New("shared file image does not match light-then-heavy release order")
	}
	return nil
}

// runHalfOpen drives one breaker through the complete cycle and asserts
// the state at every stage.
func (e *tenantEnv) runHalfOpen() error {
	for _, name := range []string{"noisy", "victim"} {
		if _, err := e.svc.AddTenant(name, tenant.Limits{}); err != nil {
			return err
		}
	}
	if err := e.svc.SubmitWait("noisy", e.job("noisy-write", "noisy.dat", noisyTile, true)); err == nil {
		return errors.New("noisy job survived a hard sieve fault storm")
	}
	if !e.svc.Breakers().AnyOpen() {
		return errors.New("hard errors did not trip a breaker")
	}
	e.svc.Tick()
	e.svc.Tick()
	if e.svc.Breakers().AnyOpen() {
		return errors.New("breaker still open after cooldown (want half-open)")
	}
	half := false
	for _, b := range e.svc.Breakers().Status() {
		if b.State == tenant.BreakerHalfOpen {
			half = true
		}
	}
	if !half {
		return errors.New("no breaker reached half-open after cooldown")
	}
	victimJob := e.job("victim-write", "victim.dat", victimTile, true)
	if err := e.svc.SubmitWait("victim", victimJob); err != nil {
		return fmt.Errorf("half-open probe failed: %w", err)
	}
	for _, b := range e.svc.Breakers().Status() {
		if b.State != tenant.BreakerClosed {
			return fmt.Errorf("OST %d breaker ended %v, want closed", b.OST, b.State)
		}
	}
	if got := e.tripsTotal(); got != 1 {
		return fmt.Errorf("breaker trips = %d, want exactly 1", got)
	}
	return e.survivorIdentical(victimJob)
}

// runInterferenceSoak: several rounds of a bullying tenant whose sieve
// writes fail, a token-limited steady tenant that sheds part of its load,
// and a light tenant. Both survivors must end byte-identical and the
// analyzer must call out the noisy neighbor.
func (e *tenantEnv) runInterferenceSoak() error {
	if _, err := e.svc.AddTenant("bully", tenant.Limits{}); err != nil {
		return err
	}
	if _, err := e.svc.AddTenant("steady", tenant.Limits{Tokens: 2, Refill: -1}); err != nil {
		return err
	}
	if _, err := e.svc.AddTenant("light", tenant.Limits{}); err != nil {
		return err
	}
	bullyJob := e.job("bully-write", "noisy.dat", noisyTile, true)
	steadyJob := e.job("steady-write", "steady.dat", victimTile, true)
	lightJob := e.job("light-write", "light.dat", victimTile, true)

	const rounds = 4
	var bullyOK, bullyAborted, steadyShed int
	for r := 0; r < rounds; r++ {
		switch err := e.svc.SubmitWait("bully", bullyJob); {
		case err == nil:
			bullyOK++
		case errors.Is(err, mpiio.ErrCollectiveAbort):
			bullyAborted++
		default:
			return fmt.Errorf("round %d: bully failed oddly: %w", r, err)
		}
		switch err := e.svc.SubmitWait("steady", steadyJob); {
		case err == nil:
		case errors.Is(err, tenant.ErrAdmissionRejected):
			steadyShed++
		default:
			return fmt.Errorf("round %d: steady failed: %w", r, err)
		}
		if err := e.svc.SubmitWait("light", lightJob); err != nil {
			return fmt.Errorf("round %d: light tenant failed: %w", r, err)
		}
		e.svc.Tick()
	}
	if bullyAborted == 0 {
		return errors.New("bully never aborted: fault storm missed")
	}
	if bullyOK == 0 {
		return errors.New("bully never recovered through degraded routing")
	}
	if steadyShed == 0 {
		return errors.New("steady tenant never shed: admission control missed")
	}
	if e.tripsTotal() == 0 {
		return errors.New("no breaker trips recorded")
	}
	if err := e.survivorIdentical(steadyJob); err != nil {
		return err
	}
	if err := e.survivorIdentical(lightJob); err != nil {
		return err
	}
	out, err := e.outcome()
	if err != nil {
		return err
	}
	for _, f := range out.Findings {
		if f.Code == "noisy-neighbor" {
			return nil
		}
	}
	return fmt.Errorf("analyzer missed the noisy neighbor (findings: %v)", out.Findings)
}

// TenantMatrix enumerates the multi-tenant scenario grid across the three
// engines. Seeds are a deterministic function of the scenario index.
func TenantMatrix() []TenantScenario {
	grid := []struct {
		kind    string
		engines []string
	}{
		{TKindErrorStorm, []string{"core-nb", "core-a2a", "twophase"}},
		{TKindReadAfterStorm, []string{"core-nb"}},
		{TKindBrownout, []string{"core-nb", "twophase"}},
		{TKindRevokeStorm, []string{"core-nb"}},
		{TKindAdmissionBurst, []string{"core-nb", "twophase"}},
		{TKindDeadlineShed, []string{"core-nb"}},
		{TKindFairShare, []string{"core-nb"}},
		{TKindHalfOpen, []string{"core-a2a"}},
		{TKindInterferenceSoak, []string{"core-nb", "twophase"}},
	}
	var ms []TenantScenario
	i := int64(0)
	for _, g := range grid {
		for _, eng := range g.engines {
			i++
			ms = append(ms, TenantScenario{Kind: g.kind, Engine: eng, Seed: 7000 + i})
		}
	}
	return ms
}

// TenantQuick is the short-mode subset: one scenario per kind.
func TenantQuick() []TenantScenario {
	seen := map[string]bool{}
	var qs []TenantScenario
	for _, s := range TenantMatrix() {
		if !seen[s.Kind] {
			seen[s.Kind] = true
			qs = append(qs, s)
		}
	}
	return qs
}

// TenantSoak runs the scenarios, logging one line each. Every scenario
// exports per-tenant artifacts into traceDir (when non-empty): the last
// job's flight recorder as <scenario>.<tenant>.flight.json, its critical
// path as <scenario>.<tenant>.critpath.txt, and a cross-tenant
// differential report <scenario>.report.txt diffing the first two tenants'
// last jobs (under interference scenarios, how the victim's run differs
// from its neighbor's). It returns the number of invariant violations.
func TenantSoak(scenarios []TenantScenario, traceDir string, logf func(format string, args ...any)) int {
	failures := 0
	for _, s := range scenarios {
		out, err := s.Run()
		status := "ok"
		if err != nil {
			failures++
			status = "FAIL: " + err.Error()
		}
		var trips, rejected, degraded int64
		if out != nil {
			for _, b := range out.Breakers {
				trips += b.Trips
			}
			for _, st := range out.Stats {
				rejected += st.Rejected
				degraded += st.Degraded
			}
		}
		var inj int64
		if out != nil {
			inj = out.Injected
		}
		logf("%-38s inj=%-4d trips=%-2d rejected=%-3d degraded=%-3d findings=%-2d %s",
			s.Name(), inj, trips, rejected, degraded, findingCount(out), status)
		if traceDir == "" || out == nil || out.Service == nil {
			continue
		}
		for _, st := range out.Stats {
			met, sink := out.Service.LastArtifacts(st.Name)
			if met != nil {
				path := traceDir + "/" + s.Name() + "." + st.Name + ".flight.json"
				if werr := writeFlightFile(met, path); werr == nil {
					logf("  flight recorder written to %s", path)
				}
			}
			if sink != nil {
				path := traceDir + "/" + s.Name() + "." + st.Name + ".critpath.txt"
				if werr := writeCritPathFile(sink, path); werr == nil {
					logf("  critical path written to %s", path)
				}
			}
		}
		var pair []*report.Source
		for _, st := range out.Stats {
			if len(pair) == 2 {
				break
			}
			if met, _ := out.Service.LastArtifacts(st.Name); met != nil {
				if src, serr := report.FromSet(st.Name, met); serr == nil {
					pair = append(pair, src)
				}
			}
		}
		if len(pair) == 2 {
			path := traceDir + "/" + s.Name() + ".report.txt"
			if werr := writeDiffFile(pair[0], pair[1], path); werr == nil {
				logf("  cross-tenant report written to %s", path)
			}
		}
	}
	return failures
}

func findingCount(out *TenantOutcome) int {
	if out == nil {
		return 0
	}
	return len(out.Findings)
}
