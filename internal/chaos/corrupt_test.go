package chaos

import (
	"os"
	"testing"

	"flexio/internal/mpiio"
)

// TestCorruptMatrix is the cross-engine integrity property test: every
// injected flip — wire and at-rest, all three engines, read and write,
// with and without pre-aggregation — is either repaired byte-identically
// or ends in a uniform ErrDataIntegrity abort, gated on the survivor
// file's bytes. Silent divergence anywhere fails the scenario.
func TestCorruptMatrix(t *testing.T) {
	scenarios := CorruptMatrix()
	if testing.Short() {
		scenarios = CorruptQuick()
	}
	traceDir := os.Getenv("CHAOS_TRACE_DIR")
	for _, s := range scenarios {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			out, err := s.Run()
			if err != nil {
				if traceDir != "" && out != nil {
					if out.Trace != nil {
						path := traceDir + "/" + s.Name() + ".trace.json"
						if werr := out.Trace.WriteChromeTraceFile(path); werr == nil {
							t.Logf("chrome trace written to %s", path)
						}
					}
					if out.Metrics != nil {
						path := traceDir + "/" + s.Name() + ".flight.json"
						if werr := writeFlightFile(out.Metrics, path); werr == nil {
							t.Logf("flight recorder written to %s", path)
						}
					}
				}
				t.Fatal(err)
			}
		})
	}
}

// TestCorruptAbortHeals pins the full quarantine lifecycle on one
// scenario: unrepairable at-rest damage aborts with the integrity class,
// stays quarantined (never silently served), and a clean full rewrite
// through the normal datapath heals the backlog to zero.
func TestCorruptAbortHeals(t *testing.T) {
	s := CorruptScenario{Engine: "core-nb", Write: true, Plane: CorruptAtRest, Seed: 77}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Class != mpiio.ClassIntegrity {
		t.Fatalf("class = %s, want integrity", mpiio.ClassName(out.Class))
	}
	if !out.Healed {
		t.Fatal("clean rewrite did not heal the quarantine")
	}
	if out.AtRest.Unrepaired == 0 {
		t.Fatal("no unrepaired read recorded before the heal")
	}
}

// TestParseCorruptSpec covers the CLI flag syntax.
func TestParseCorruptSpec(t *testing.T) {
	s, err := ParseCorruptSpec("core-nb", true, "atrest:abort:pre", 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Plane != CorruptAtRest || s.Repairable || !s.Preagg {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := ParseCorruptSpec("core-nb", true, "gamma-ray", 5); err == nil {
		t.Fatal("bad plane accepted")
	}
	if _, err := ParseCorruptSpec("core-nb", true, "wire:often", 5); err == nil {
		t.Fatal("bad modifier accepted")
	}
}
