package chaos

import (
	"os"
	"testing"

	"flexio/internal/stats"
)

// TestChaosMatrix runs the seeded scenario grid (the short-mode subset
// covers one scenario per fault pattern) and asserts every robustness
// invariant. On violation the scenario's Chrome trace is exported to
// $CHAOS_TRACE_DIR when set, so CI can attach it as an artifact.
func TestChaosMatrix(t *testing.T) {
	scenarios := Matrix()
	if testing.Short() {
		scenarios = Quick()
	}
	traceDir := os.Getenv("CHAOS_TRACE_DIR")
	for _, s := range scenarios {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			out, err := s.Run()
			if err != nil {
				if traceDir != "" && out != nil && out.Trace != nil {
					path := traceDir + "/" + s.Name() + ".trace.json"
					if werr := out.Trace.WriteChromeTraceFile(path); werr == nil {
						t.Logf("chrome trace written to %s", path)
					}
				}
				t.Fatal(err)
			}
		})
	}
}

// TestChaosDeterministic reruns a retry-heavy scenario and checks the fault
// decisions and recovery work reproduce exactly. (Virtual elapsed time is
// not compared: lock-revoke arrival order can wobble it within a round.)
func TestChaosDeterministic(t *testing.T) {
	s := Scenario{Engine: "core-nb", Write: true, Fault: FaultTransient, Seed: 7}
	a, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Class != b.Class || a.Injected != b.Injected {
		t.Errorf("outcome not deterministic: class %d/%d injected %d/%d",
			a.Class, b.Class, a.Injected, b.Injected)
	}
	for _, c := range []string{stats.CRetries, stats.CPartialResumes, stats.CGiveups, stats.CFaultsInjected} {
		if x, y := a.Stats.Counter(c), b.Stats.Counter(c); x != y {
			t.Errorf("counter %q not deterministic: %d vs %d", c, x, y)
		}
	}
}
