package chaos

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"flexio/internal/metrics"
	"flexio/internal/mpiio"
	"flexio/internal/stats"
)

// out0Dump parses a canonical dump back for structural assertions.
func out0Dump(t *testing.T, b []byte) *metrics.Dump {
	t.Helper()
	var d metrics.Dump
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatalf("flight dump does not parse: %v", err)
	}
	return &d
}

// TestChaosMatrix runs the seeded scenario grid (the short-mode subset
// covers one scenario per fault pattern) and asserts every robustness
// invariant. On violation the scenario's Chrome trace is exported to
// $CHAOS_TRACE_DIR when set, so CI can attach it as an artifact.
func TestChaosMatrix(t *testing.T) {
	scenarios := Matrix()
	if testing.Short() {
		scenarios = Quick()
	}
	traceDir := os.Getenv("CHAOS_TRACE_DIR")
	for _, s := range scenarios {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			out, err := s.Run()
			if err != nil {
				if traceDir != "" && out != nil {
					if out.Trace != nil {
						path := traceDir + "/" + s.Name() + ".trace.json"
						if werr := out.Trace.WriteChromeTraceFile(path); werr == nil {
							t.Logf("chrome trace written to %s", path)
						}
					}
					if out.Metrics != nil {
						path := traceDir + "/" + s.Name() + ".flight.json"
						if werr := writeFlightFile(out.Metrics, path); werr == nil {
							t.Logf("flight recorder written to %s", path)
						}
					}
				}
				t.Fatal(err)
			}
		})
	}
}

// TestChaosDeterministic reruns a retry-heavy scenario and checks the fault
// decisions and recovery work reproduce exactly. (Virtual elapsed time is
// not compared: lock-revoke arrival order can wobble it within a round.)
func TestChaosDeterministic(t *testing.T) {
	s := Scenario{Engine: "core-nb", Write: true, Fault: FaultTransient, Seed: 7}
	a, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Class != b.Class || a.Injected != b.Injected {
		t.Errorf("outcome not deterministic: class %d/%d injected %d/%d",
			a.Class, b.Class, a.Injected, b.Injected)
	}
	for _, c := range []string{stats.CRetries, stats.CPartialResumes, stats.CGiveups, stats.CFaultsInjected} {
		if x, y := a.Stats.Counter(c), b.Stats.Counter(c); x != y {
			t.Errorf("counter %q not deterministic: %d vs %d", c, x, y)
		}
	}
}

// TestFlightDumpDeterministic: for a fixed chaos seed, the canonical
// flight-recorder dump — the postmortem artifact Soak writes for aborted
// scenarios — must be byte-identical across runs. This is what makes a CI
// flight.json artifact directly diffable against a local reproduction.
func TestFlightDumpDeterministic(t *testing.T) {
	// A scenario that aborts: hard error confined to round 1, so the dump
	// carries both round traffic and the abort context.
	s := Scenario{Engine: "core-nb", Write: true, Method: mpiio.DataSieve, Fault: FaultRound1, Seed: 42}
	dumps := make([][]byte, 2)
	for i := range dumps {
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if out.Class == mpiio.ClassOK {
			t.Fatal("scenario unexpectedly succeeded; dump would carry no abort")
		}
		var buf bytes.Buffer
		if err := out.Metrics.Dump(false).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		dumps[i] = buf.Bytes()
	}
	if !bytes.Equal(dumps[0], dumps[1]) {
		t.Errorf("canonical flight dumps differ between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			dumps[0], dumps[1])
	}
	d := out0Dump(t, dumps[0])
	if d.Abort == nil {
		t.Error("dump carries no abort context")
	}

	// The Soak file path produces the same bytes.
	dir := t.TempDir()
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "x.flight.json")
	if err := writeFlightFile(out.Metrics, path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, dumps[0]) {
		t.Error("Soak flight file differs from in-memory canonical dump")
	}
}
