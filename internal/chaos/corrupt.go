package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"flexio/internal/core"
	"flexio/internal/datatype"
	"flexio/internal/hpio"
	"flexio/internal/integrity"
	"flexio/internal/metrics"
	"flexio/internal/mpi"
	"flexio/internal/mpiio"
	"flexio/internal/pfs"
	"flexio/internal/sim"
	"flexio/internal/stats"
	"flexio/internal/trace"
	"flexio/internal/twophase"
)

// CorruptPlane names where a corruption scenario injects bit damage.
type CorruptPlane string

const (
	// CorruptWire flips payload bits in flight on every link: the
	// receiver-side wire checksum must catch each one.
	CorruptWire CorruptPlane = "wire"
	// CorruptAtRest flips a stored bit after the bytes land on the media:
	// the per-stripe-block checksum must catch it on the next read.
	CorruptAtRest CorruptPlane = "atrest"
	// CorruptTorn loses the tail of written segments (torn write): reads
	// see zeros where data should be, caught like any at-rest mismatch.
	CorruptTorn CorruptPlane = "torn"
)

// CorruptScenario is one deterministic silent-corruption experiment. The
// property under test is the end-to-end integrity contract: every injected
// flip is either repaired byte-identically or ends in a uniform
// ErrDataIntegrity abort — never silent divergence. The gate is the
// survivor file's bytes (writes) or the per-rank read-back buffers
// (reads), always against a fault-free reference.
type CorruptScenario struct {
	// Engine selects the collective: "core-nb", "core-a2a", or "twophase".
	Engine string
	// Write selects the transfer direction the corruption rides on.
	Write bool
	// Plane is where the corruption is injected.
	Plane CorruptPlane
	// Repairable selects the recovery budget: true leaves the repair path
	// available (wire: one corrupted delivery per hit, inside the
	// re-request bound; at-rest: a retained-block ring large enough to
	// hold the working set), false exhausts it, forcing the
	// ErrDataIntegrity abort.
	Repairable bool
	// Preagg enables node-local pre-aggregation, so the corruption also
	// rides the two-level exchange's leader gather and scatter.
	Preagg bool
	// Seed drives the fault coins and the checksum domain.
	Seed int64
}

// Name is a stable identifier for logs, subtests, and artifact file names.
func (s CorruptScenario) Name() string {
	dir := "read"
	if s.Write {
		dir = "write"
	}
	mode := "abort"
	if s.Repairable {
		mode = "repair"
	}
	n := fmt.Sprintf("%s-%s-corrupt-%s-%s", s.Engine, dir, s.Plane, mode)
	if s.Preagg {
		n += "-pre"
	}
	return n
}

// collective instantiates the engine under test.
func (s CorruptScenario) collective() mpiio.Collective {
	switch s.Engine {
	case "core-a2a":
		return core.New(core.Options{Comm: core.Alltoallw, Method: mpiio.DataSieve, Preagg: s.Preagg})
	case "twophase":
		tw := twophase.New()
		if s.Preagg {
			tw.WithPreagg()
		}
		return tw
	default:
		return core.New(core.Options{Method: mpiio.DataSieve, Preagg: s.Preagg})
	}
}

// wireSchedule builds the in-flight corruption plan: every payload on
// every link is corrupted, with the repeat budget deciding repairability.
// Unlimited count keeps the plan independent of goroutine scheduling.
func (s CorruptScenario) wireSchedule() *mpi.RankFaultSchedule {
	repeat := 1
	if !s.Repairable {
		repeat = integrityRepeatUnrepairable
	}
	return mpi.NewRankFaultSchedule(s.Seed).Corrupt(mpi.Any, mpi.Any, 1, repeat, 0)
}

// integrityRepeatUnrepairable is one past the bounded re-request budget:
// every delivery attempt of a hit arrives corrupted, so the receiver can
// never pull a clean copy.
const integrityRepeatUnrepairable = 4

// flipSchedule builds the at-rest corruption plan: every write segment is
// flipped (or torn), so whichever write lands last on a page leaves
// detectable damage for the next read.
func (s CorruptScenario) flipSchedule() *pfs.FaultSchedule {
	sched := pfs.NewFaultSchedule(s.Seed)
	kind := "bitflip"
	if s.Plane == CorruptTorn {
		kind = "torn"
	}
	sched.AddFlip(pfs.FlipRule{Kind: kind})
	return sched
}

// atRestRingCap sizes the retained-block repair ring: generous for
// repairable scenarios (the chaos tile's working set fits), and a single
// slot otherwise, so every quarantined page but the most recent one has
// aged out and the read must surface ErrDataIntegrity.
func (s CorruptScenario) atRestRingCap() int {
	if s.Repairable {
		return 0 // default, sized for the chaos matrices
	}
	return 1
}

// CorruptOutcome reports what one corruption scenario observed.
type CorruptOutcome struct {
	Scenario CorruptScenario
	// Class is the agreed error class of the phase where detection had to
	// happen (ClassOK when the datapath repaired everything inline).
	Class int64
	// Injected counts corruption events the schedules fired.
	Injected int64
	// WireMismatch / WireRepaired are the merged wire-checksum counters.
	WireMismatch, WireRepaired int64
	// AtRest is the file system's at-rest integrity snapshot.
	AtRest integrity.Stats
	// Healed reports that the post-abort clean rerun restored the file to
	// the byte-identical reference (abort scenarios only).
	Healed bool
	// Elapsed is the total virtual time across all phases.
	Elapsed sim.Time
	Trace   *trace.Sink
	Metrics *metrics.Set
	// Stats is the merged per-rank recorder.
	Stats *stats.Recorder
}

// Run executes the scenario and checks the integrity invariants. The
// returned error is an invariant violation (nil means the scenario
// behaved); the outcome is returned even on violation so the caller can
// export trace and flight artifacts.
func (s CorruptScenario) Run() (*CorruptOutcome, error) {
	wl := hpio.Pattern{Ranks: 4, RegionSize: 64, RegionCount: 32, Spacing: 64}
	cfg := sim.DefaultConfig()
	w := mpi.NewWorld(wl.Ranks, cfg)
	fs := pfs.NewFileSystem(cfg)
	w.EnableIntegrity(s.Seed)
	fs.EnableIntegrity(s.Seed, s.atRestRingCap())
	const fname = "corrupt.dat"

	atRest := s.Plane != CorruptWire
	var sched *pfs.FaultSchedule
	if atRest {
		sched = s.flipSchedule()
	}

	// Read scenarios verify against a seeded file. At-rest read scenarios
	// arm the flip schedule during the seeding writes — that is how the
	// corruption gets to rest under recorded checksums — while wire read
	// scenarios seed fault-free.
	if !s.Write {
		if atRest {
			fs.SetFaultSchedule(sched)
		}
		if err := s.seed(w, fs, fname, wl); err != nil {
			return nil, fmt.Errorf("corrupt: seeding %s: %w", s.Name(), err)
		}
		fs.SetFaultSchedule(nil)
	}

	sink := w.EnableTracing(0)
	met := w.EnableMetrics()
	w.SetNodeMap(mpi.BlockNodeMap(nodeRanks))
	w.ResetClocks()
	fs.ResetTiming()

	var rf *mpi.RankFaultSchedule
	if s.Plane == CorruptWire {
		rf = s.wireSchedule()
		w.SetRankFaults(rf)
	} else if s.Write {
		fs.SetFaultSchedule(sched)
	}

	// attempt runs one collective transfer on every rank. collBuf sizes
	// the two-phase windows: the faulted phases use a sub-block buffer
	// (the interesting case — shuffle pieces smaller than a stripe
	// block), while the heal rewrite uses block-aligned windows, because
	// clearing a quarantine demands a window that repaves the whole
	// block — exactly what a journal-replay repair writer does.
	attempt := func(write bool, collBuf int64) ([]error, []bool) {
		errs := make([]error, wl.Ranks)
		mism := make([]bool, wl.Ranks)
		w.Run(func(p *mpi.Proc) {
			f, err := mpiio.Open(p, fs, fname, mpiio.Info{
				Collective:  s.collective(),
				CollBufSize: collBuf,
			})
			if err != nil {
				errs[p.Rank()] = err
				return
			}
			ft, disp := wl.Filetype(p.Rank())
			if err := f.SetView(disp, datatype.Bytes(1), ft); err != nil {
				errs[p.Rank()] = err
				return
			}
			mt, bufLen := wl.Memtype()
			if write {
				errs[p.Rank()] = f.WriteAll(wl.FillBuffer(p.Rank()), mt, wl.RegionCount)
			} else {
				buf := make([]byte, bufLen)
				if err := f.ReadAll(buf, mt, wl.RegionCount); err != nil {
					errs[p.Rank()] = err
				} else {
					got, _ := datatype.Pack(buf, mt, 0, wl.RegionCount)
					exp, _ := datatype.Pack(wl.FillBuffer(p.Rank()), mt, 0, wl.RegionCount)
					mism[p.Rank()] = !bytes.Equal(got, exp)
				}
			}
			f.Close()
		})
		return errs, mism
	}

	finish := func() *CorruptOutcome {
		m := met.Merged()
		injected := int64(0)
		if rf != nil {
			injected += rf.Injected()
		}
		if sched != nil {
			injected += sched.Injected()
		}
		return &CorruptOutcome{
			Scenario:     s,
			Injected:     injected,
			WireMismatch: m.Counter(metrics.CIntegWireMismatch),
			WireRepaired: m.Counter(metrics.CIntegWireRepaired),
			AtRest:       fs.IntegrityStats(),
			Elapsed:      w.MaxClock(),
			Trace:        sink,
			Metrics:      met,
			Stats:        stats.Merge(w.Recorders()...),
		}
	}

	// Phase 1: the faulted transfer. Write scenarios follow with a
	// verifying collective read-back (the phase where at-rest damage is
	// detected); read scenarios detect inside the faulted read itself.
	phase := "transfer"
	errs, mism := attempt(s.Write, 1024)
	if s.Write && allNil(errs) {
		phase = "readback"
		errs, mism = attempt(false, 1024)
	}
	out := finish()

	// Invariant 1: agreement — all ranks succeed or all abort with the
	// same class wrapping ErrCollectiveAbort.
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed != 0 && failed != wl.Ranks {
		return out, fmt.Errorf("%s agreement violated: %d of %d ranks errored: %v",
			phase, failed, wl.Ranks, errs)
	}
	out.Class = mpiio.ErrorClass(errs[0])
	for r, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, mpiio.ErrCollectiveAbort) {
			return out, fmt.Errorf("rank %d error does not wrap ErrCollectiveAbort: %v", r, err)
		}
		if c := mpiio.ErrorClass(err); c != out.Class {
			return out, fmt.Errorf("rank %d agreed class %s, rank 0 %s",
				r, mpiio.ClassName(c), mpiio.ClassName(out.Class))
		}
	}

	// Invariant 2: the injection fired and was detected — silent
	// corruption with the checksummed datapath on is the one forbidden
	// outcome.
	if out.Injected == 0 {
		return out, fmt.Errorf("corruption schedule never fired")
	}
	if s.Plane == CorruptWire && out.WireMismatch == 0 {
		return out, fmt.Errorf("wire checksum never tripped across %d injections", out.Injected)
	}
	if atRest && out.AtRest.Mismatches == 0 {
		return out, fmt.Errorf("at-rest checksum never tripped across %d injections", out.Injected)
	}

	if s.Repairable {
		// Invariant 3a: everything repaired inline — the collective
		// completed and the data is byte-identical to the fault-free
		// reference.
		if out.Class != mpiio.ClassOK {
			return out, fmt.Errorf("repairable corruption aborted with class %s (rank 0: %v)",
				mpiio.ClassName(out.Class), errs[0])
		}
		if s.Plane == CorruptWire && out.WireRepaired == 0 {
			return out, fmt.Errorf("no wire repair recorded")
		}
		if atRest {
			if out.AtRest.Repairs == 0 {
				return out, fmt.Errorf("no at-rest repair recorded")
			}
			if out.AtRest.Backlog != 0 {
				return out, fmt.Errorf("repairable run left %d blocks quarantined", out.AtRest.Backlog)
			}
		}
		return out, s.verifyData(fs, fname, wl, mism)
	}

	// Invariant 3b: the repair budget is exhausted — the phase where
	// detection happens must abort uniformly with the integrity class,
	// and at-rest damage must stay flagged (quarantined), never silently
	// served.
	if out.Class != mpiio.ClassIntegrity {
		return out, fmt.Errorf("unrepairable corruption agreed class %s, want integrity (rank 0: %v)",
			mpiio.ClassName(out.Class), errs[0])
	}
	if atRest && out.AtRest.Backlog == 0 {
		return out, fmt.Errorf("unrepairable at-rest damage left no quarantine backlog")
	}

	// Invariant 4: recoverability — with the fault plane cleared, a full
	// rewrite through the normal datapath (the journal-replay repair in
	// miniature) heals the quarantine and the file converges to the
	// reference.
	w.SetRankFaults(nil)
	fs.SetFaultSchedule(nil)
	errs, _ = attempt(true, cfg.PageSize)
	for r, err := range errs {
		if err != nil {
			return out, fmt.Errorf("rank %d failed on the clean heal rewrite: %v", r, err)
		}
	}
	errs, mism = attempt(false, cfg.PageSize)
	for r, err := range errs {
		if err != nil {
			return out, fmt.Errorf("rank %d failed reading back the healed file: %v", r, err)
		}
	}
	st := fs.IntegrityStats()
	if st.Backlog != 0 {
		return out, fmt.Errorf("heal rewrite left %d blocks quarantined", st.Backlog)
	}
	out.Healed = true
	out.AtRest.Backlog = 0
	return out, s.verifyData(fs, fname, wl, mism)
}

// seed writes the reference file through the trusted independent path.
func (s CorruptScenario) seed(w *mpi.World, fs *pfs.FileSystem, fname string, wl hpio.Pattern) error {
	seedErr := make(chan error, wl.Ranks)
	w.Run(func(p *mpi.Proc) {
		f, err := mpiio.Open(p, fs, fname, mpiio.Info{IndepMethod: mpiio.ListIO})
		if err != nil {
			seedErr <- err
			return
		}
		ft, disp := wl.Filetype(p.Rank())
		if err := f.SetView(disp, datatype.Bytes(1), ft); err != nil {
			seedErr <- err
			return
		}
		mt, _ := wl.Memtype()
		if err := f.WriteIndependent(wl.FillBuffer(p.Rank()), mt, wl.RegionCount); err != nil {
			seedErr <- err
			return
		}
		seedErr <- f.Close()
	})
	for i := 0; i < wl.Ranks; i++ {
		if err := <-seedErr; err != nil {
			return err
		}
	}
	return nil
}

// verifyData checks byte-identity with the fault-free reference: the file
// image (write scenarios and heals) or the per-rank read-back buffers.
func (s CorruptScenario) verifyData(fs *pfs.FileSystem, fname string, wl hpio.Pattern, mism []bool) error {
	for r, bad := range mism {
		if bad {
			return fmt.Errorf("rank %d: read-back bytes diverge from the reference", r)
		}
	}
	img := fs.Snapshot(fname, wl.FileSize())
	ref := wl.Reference()
	for i := range ref {
		if img[i] != ref[i] {
			return fmt.Errorf("file byte %d = %d, want %d (corrupted byte reached the survivor file)",
				i, img[i], ref[i])
		}
	}
	return nil
}

func allNil(errs []error) bool {
	for _, err := range errs {
		if err != nil {
			return false
		}
	}
	return true
}

// CorruptMatrix enumerates the corruption grid: all three engines, both
// directions, both planes, repairable and unrepairable budgets — plus torn
// writes and the pre-aggregation variants riding the two-level exchange.
func CorruptMatrix() []CorruptScenario {
	var ms []CorruptScenario
	i := int64(0)
	add := func(engine string, write bool, plane CorruptPlane, repairable, pre bool) {
		i++
		ms = append(ms, CorruptScenario{
			Engine: engine, Write: write, Plane: plane,
			Repairable: repairable, Preagg: pre, Seed: 9000 + i,
		})
	}
	for _, e := range []string{"core-nb", "core-a2a", "twophase"} {
		for _, write := range []bool{true, false} {
			for _, plane := range []CorruptPlane{CorruptWire, CorruptAtRest} {
				add(e, write, plane, true, false)
				add(e, write, plane, false, false)
			}
		}
		add(e, true, CorruptTorn, true, false)
	}
	// Pre-aggregation: the leader gather, merge, and scatter must carry
	// the checksums too.
	for _, e := range []string{"core-nb", "core-a2a", "twophase"} {
		add(e, true, CorruptWire, true, true)
		add(e, false, CorruptWire, true, true)
		add(e, true, CorruptAtRest, true, true)
	}
	return ms
}

// CorruptQuick is the short-mode subset: one scenario per (plane, budget)
// combination.
func CorruptQuick() []CorruptScenario {
	seen := map[string]bool{}
	var qs []CorruptScenario
	for _, s := range CorruptMatrix() {
		key := string(s.Plane) + fmt.Sprint(s.Repairable)
		if !seen[key] {
			seen[key] = true
			qs = append(qs, s)
		}
	}
	return qs
}

// ParseCorruptSpec parses "plane[:abort][:pre]" (e.g. "wire", "atrest:abort",
// "torn", "wire:abort:pre") into a scenario for the given engine and
// direction.
func ParseCorruptSpec(engine string, write bool, spec string, seed int64) (CorruptScenario, error) {
	s := CorruptScenario{Engine: engine, Write: write, Repairable: true, Seed: seed}
	parts := strings.Split(spec, ":")
	switch CorruptPlane(parts[0]) {
	case CorruptWire, CorruptAtRest, CorruptTorn:
		s.Plane = CorruptPlane(parts[0])
	default:
		return s, fmt.Errorf("unknown corruption plane %q (want %s, %s, or %s)",
			parts[0], CorruptWire, CorruptAtRest, CorruptTorn)
	}
	for _, p := range parts[1:] {
		switch p {
		case "abort":
			s.Repairable = false
		case "repair":
			s.Repairable = true
		case "pre":
			s.Preagg = true
		default:
			return s, fmt.Errorf("unknown corruption modifier %q (want abort, repair, or pre)", p)
		}
	}
	return s, nil
}

// CorruptSoak runs the corruption scenarios, logging one line each via
// logf. Failing scenarios export their Chrome trace into traceDir (when
// non-empty); aborting or failing scenarios additionally dump the flight
// recorder; every scenario writes its ranked differential report against a
// fault-free baseline of the same engine configuration. It returns the
// number of invariant violations.
func CorruptSoak(scenarios []CorruptScenario, traceDir string, logf func(format string, args ...any)) int {
	failures := 0
	bl := baselines{}
	for _, s := range scenarios {
		out, err := s.Run()
		status := "ok"
		if err != nil {
			failures++
			status = "FAIL: " + err.Error()
		}
		if out == nil {
			logf("%-44s %s", s.Name(), status)
			continue
		}
		logf("%-44s class=%-9s inj=%-4d wire=%d/%d rest=%d/%d backlog=%-3d t=%8.3fms  %s",
			s.Name(), mpiio.ClassName(out.Class), out.Injected,
			out.WireRepaired, out.WireMismatch,
			out.AtRest.Repairs, out.AtRest.Mismatches, out.AtRest.Backlog,
			float64(out.Elapsed)*1e3, status)
		if traceDir == "" {
			continue
		}
		if err != nil && out.Trace != nil {
			path := traceDir + "/" + s.Name() + ".trace.json"
			if werr := out.Trace.WriteChromeTraceFile(path); werr == nil {
				logf("  trace written to %s", path)
			}
		}
		if (err != nil || out.Class != mpiio.ClassOK) && out.Metrics != nil {
			path := traceDir + "/" + s.Name() + ".flight.json"
			if werr := writeFlightFile(out.Metrics, path); werr == nil {
				logf("  flight recorder written to %s", path)
			}
		}
		if out.Metrics != nil {
			base := Scenario{Engine: s.Engine, Write: s.Write, Method: mpiio.DataSieve, Seed: 1, Preagg: s.Preagg}
			path := traceDir + "/" + s.Name() + ".report.txt"
			if werr := writeReportFile(bl.source(base), out.Metrics, s.Name(), path); werr == nil {
				logf("  differential report written to %s", path)
			}
		}
	}
	return failures
}
