// Checkpoint: a NetCDF-style time-step checkpoint writer (the paper's
// §6.4 scenario). A 3-D field of multi-variable data points is written one
// time step per collective call, with all time steps of a data point kept
// together in the file. The example runs the same workload under all four
// combinations of persistent file realms and stripe-aligned realms and
// prints the resulting bandwidth and lock traffic — the paper's Figure 7
// in miniature.
//
// Run with: go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"

	"flexio/internal/core"
	"flexio/internal/datatype"
	"flexio/internal/mpi"
	"flexio/internal/mpiio"
	"flexio/internal/pfs"
	"flexio/internal/sim"
	"flexio/internal/stats"
)

const (
	clients       = 16
	elemsPerPoint = 100 // variables per data point
	elemSize      = 32  // bytes per variable
	points        = 512 // data points
	steps         = 12  // time steps
)

func runConfig(pfr bool, align int64) (bw float64, revokes, conflicts int64) {
	cfg := sim.DefaultConfig()
	world := mpi.NewWorld(clients, cfg)
	fs := pfs.NewFileSystem(cfg)

	slotSize := int64(elemsPerPoint * elemSize)
	pointExtent := int64(steps) * slotSize

	world.Run(func(p *mpi.Proc) {
		f, err := mpiio.Open(p, fs, "checkpoint.nc", mpiio.Info{
			Collective: core.New(core.Options{
				Persistent: pfr,
				Align:      align,
				Method:     mpiio.DataSieve,
			}),
			CbNodes: clients / 2,
		})
		if err != nil {
			log.Fatal(err)
		}

		// This rank owns every clients-th variable of each point.
		var lens, displs []int64
		for e := int64(p.Rank()); e < elemsPerPoint; e += clients {
			lens = append(lens, 1)
			displs = append(displs, e*elemSize)
		}
		slot := datatype.Must(datatype.HIndexed(lens, displs, datatype.Bytes(elemSize)))
		filetype := datatype.Must(datatype.Resized(slot, pointExtent))
		mine := int64(len(lens)) * elemSize
		buf := make([]byte, mine*points)

		for t := 0; t < steps; t++ {
			// The view slides one slot per time step; persistent
			// realms survive the view change.
			if err := f.SetView(int64(t)*slotSize, datatype.Bytes(1), filetype); err != nil {
				log.Fatal(err)
			}
			for i := range buf {
				buf[i] = byte(t*17 + p.Rank()*3 + i%251)
			}
			if err := f.WriteAll(buf, datatype.Bytes(mine), points); err != nil {
				log.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	})

	total := int64(points) * elemsPerPoint * elemSize * steps
	agg := stats.Merge(world.Recorders()...)
	return float64(total) / 1e6 / world.MaxClock().Seconds(),
		agg.Counter(stats.CLockRevokes),
		agg.Counter(stats.CStripeConflicts)
}

func main() {
	fmt.Printf("time-step checkpoint: %d clients, %d points x %d vars x %dB, %d steps (%.2f MB/step)\n\n",
		clients, points, elemsPerPoint, elemSize, steps,
		float64(points*elemsPerPoint*elemSize)/1e6)
	fmt.Printf("%-22s %10s %12s %12s\n", "configuration", "MB/s", "revocations", "conflicts")
	stripe := sim.DefaultConfig().StripeSize
	for _, c := range []struct {
		name  string
		pfr   bool
		align int64
	}{
		{"pfr + fr-align", true, stripe},
		{"pfr only", true, 0},
		{"fr-align only", false, stripe},
		{"neither", false, 0},
	} {
		bw, rev, conf := runConfig(c.pfr, c.align)
		fmt.Printf("%-22s %10.2f %12d %12d\n", c.name, bw, rev, conf)
	}
	fmt.Println("\nAligned persistent realms keep every page and stripe lock cached at one")
	fmt.Println("aggregator for the life of the file; the unaligned configurations pay for")
	fmt.Println("lock transfers every step.")
}
