// HPIO sweep: a reduced-scale rendition of the paper's Figure 4. The HPIO
// pattern (noncontiguous in memory and file) is swept over region sizes,
// comparing the new implementation with a succinct filetype, the new
// implementation with an enumerated filetype, and the original ROMIO-style
// implementation.
//
// Run with: go run ./examples/hpio-sweep
package main

import (
	"fmt"
	"log"

	"flexio/internal/colltest"
	"flexio/internal/core"
	"flexio/internal/hpio"
	"flexio/internal/mpiio"
	"flexio/internal/sim"
	"flexio/internal/twophase"
)

func main() {
	const (
		ranks   = 16
		regions = 512
		spacing = 128
		aggs    = 8
	)
	cfg := sim.DefaultConfig()
	sizes := []int64{8, 32, 128, 512, 2048}

	fmt.Printf("HPIO: %d procs, %d regions/proc, %dB spacing, %d aggregators\n\n",
		ranks, regions, spacing, aggs)
	fmt.Printf("%-12s %14s %14s %14s\n", "region(B)", "new+struct", "new+vect", "old+vec")

	for _, rs := range sizes {
		row := make([]float64, 0, 3)
		for _, c := range []struct {
			enum bool
			coll mpiio.Collective
		}{
			{false, core.New(core.Options{})},
			{true, core.New(core.Options{})},
			{true, twophase.New()},
		} {
			wl := hpio.Pattern{
				Ranks:        ranks,
				RegionSize:   rs,
				RegionCount:  regions,
				Spacing:      spacing,
				MemNoncontig: true,
				MemGap:       spacing,
				Enumerate:    c.enum,
			}
			res, err := colltest.RunWrite(cfg, wl, mpiio.Info{Collective: c.coll, CbNodes: aggs})
			if err != nil {
				log.Fatal(err)
			}
			if err := colltest.VerifyImage(wl, res.Image); err != nil {
				log.Fatalf("region=%d: %v", rs, err)
			}
			row = append(row, res.BandwidthMBs(wl.TotalBytes()))
		}
		fmt.Printf("%-12d %14.2f %14.2f %14.2f\n", rs, row[0], row[1], row[2])
	}
	fmt.Println("\nEvery point verified byte-for-byte against the reference image.")
	fmt.Println("The succinct filetype wins at small regions (datatype processing bound);")
	fmt.Println("the curves converge as I/O time dominates.")
}
