// Quickstart: eight simulated MPI ranks collectively write an interleaved
// file through the flexible collective I/O engine, read it back, and print
// the bandwidth the virtual-time model measured.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"flexio/internal/core"
	"flexio/internal/datatype"
	"flexio/internal/mpi"
	"flexio/internal/mpiio"
	"flexio/internal/pfs"
	"flexio/internal/sim"
)

func main() {
	const (
		ranks      = 8
		regionSize = 4096 // bytes each rank contributes per row
		rows       = 512  // interleaved rows
	)

	cfg := sim.DefaultConfig()
	world := mpi.NewWorld(ranks, cfg)
	fs := pfs.NewFileSystem(cfg)

	world.Run(func(p *mpi.Proc) {
		// Open collectively with the paper's engine plugged in as the
		// collective implementation.
		f, err := mpiio.Open(p, fs, "quickstart.dat", mpiio.Info{
			Collective: core.New(core.Options{}),
		})
		if err != nil {
			log.Fatal(err)
		}

		// File view: rank r owns regionSize bytes of every row.
		// The filetype is succinct: one region, tiled every
		// ranks*regionSize bytes.
		filetype, err := datatype.Resized(datatype.Bytes(regionSize), ranks*regionSize)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.SetView(int64(p.Rank())*regionSize, datatype.Bytes(1), filetype); err != nil {
			log.Fatal(err)
		}

		// Each rank fills its rows with a rank-specific pattern.
		buf := make([]byte, regionSize*rows)
		for i := range buf {
			buf[i] = byte(p.Rank()*31 + i%97)
		}

		if err := f.WriteAll(buf, datatype.Bytes(regionSize), rows); err != nil {
			log.Fatal(err)
		}

		// Read it back collectively and check.
		got := make([]byte, len(buf))
		if err := f.ReadAll(got, datatype.Bytes(regionSize), rows); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, buf) {
			log.Fatalf("rank %d: read-back mismatch", p.Rank())
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	})

	total := int64(ranks) * regionSize * rows * 2 // write + read
	elapsed := world.MaxClock()
	fmt.Printf("wrote and re-read %d MB across %d ranks\n", total/2/(1<<20), ranks)
	fmt.Printf("virtual time: %v   effective bandwidth: %.1f MB/s\n",
		elapsed, float64(total)/1e6/elapsed.Seconds())
	fmt.Println("data verified on every rank")
}
