// Tuning: conditional data sieving (the paper's §6.3). The engine can pick
// the collective-buffer access method per collective call from a simple
// metric — the filetype extent. This example sweeps the extent, measures
// data sieving and naive I/O beneath the same collective write, locates
// the empirical crossover, and shows that the Conditional option tracks
// the winner on both sides of it.
//
// Run with: go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"flexio/internal/core"
	"flexio/internal/datatype"
	"flexio/internal/experiments"
	"flexio/internal/mpiio"
	"flexio/internal/sim"
)

const (
	ranks    = 8
	fileSize = 64 << 20
)

// run writes the fig5-style workload (regions of half the extent) with the
// given options and returns MB/s.
func run(cfg *sim.Config, extent int64, o core.Options) float64 {
	blockSize := int64(fileSize / ranks)
	regions := blockSize / extent
	rs := extent / 2
	ft := datatype.Must(datatype.Resized(datatype.Bytes(rs), extent))
	spec := func(step, rank int) experiments.StepSpec {
		buf := make([]byte, rs*regions)
		for i := range buf {
			buf[i] = byte(rank + i)
		}
		return experiments.StepSpec{
			Filetype: ft,
			Disp:     int64(rank) * blockSize,
			Memtype:  datatype.Bytes(rs),
			Count:    regions,
			Buf:      buf,
		}
	}
	res, err := experiments.RunSteps(cfg, ranks, mpiio.Info{Collective: core.New(o)}, 1, spec)
	if err != nil {
		log.Fatal(err)
	}
	total := int64(ranks) * regions * rs
	return res.BandwidthMBs(total)
}

func main() {
	cfg := sim.DefaultConfig()
	extents := []int64{1 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}

	fmt.Printf("conditional data sieving: %d ranks, %d MB file, regions at 50%% of extent\n\n",
		ranks, fileSize>>20)
	fmt.Printf("%-12s %12s %12s %12s   %s\n", "extent", "datasieve", "naive", "conditional", "winner")

	var crossover int64 = -1
	for _, ext := range extents {
		ds := run(cfg, ext, core.Options{Method: mpiio.DataSieve})
		nv := run(cfg, ext, core.Options{Method: mpiio.Naive})
		cond := run(cfg, ext, core.Options{Conditional: true})
		winner := "datasieve"
		if nv > ds {
			winner = "naive"
			if crossover < 0 {
				crossover = ext
			}
		}
		fmt.Printf("%-12s %12.2f %12.2f %12.2f   %s\n",
			fmt.Sprintf("%dKB", ext>>10), ds, nv, cond, winner)
	}
	if crossover > 0 {
		fmt.Printf("\nempirical crossover at ~%dKB extent; the Conditional engine option picks\n", crossover>>10)
		fmt.Println("the method per collective call with a threshold hint, so applications need")
		fmt.Println("not know where the crossover falls on a given system (paper §6.3).")
	}
}
