// Command flexio-serve hosts the multi-tenant collective-I/O service as a
// long-running process: it builds one shared simulated file system, registers
// a few demonstration tenants with different admission envelopes, drives
// traffic through them, and serves the service's Prometheus exposition and a
// health endpoint.
//
// Usage:
//
//	flexio-serve                      # serve on :9090, healthy traffic
//	flexio-serve -chaos               # inject a noisy neighbor while serving
//	flexio-serve -integrity           # checksummed datapath + background scrubber
//	flexio-serve -corrupt             # silent bit-flips under 'batch'; scrub metrics move
//	flexio-serve -once                # one traffic burst, exposition to stdout
//	flexio-serve -addr :8080 -period 250ms
//
// Endpoints:
//
//	/metrics  Prometheus text exposition: per-tenant service counters,
//	          per-OST breaker state and trips, fault attribution, and the
//	          tenants' folded engine counters.
//	/healthz  JSON health verdict from the tenant analyzer (noisy-neighbor,
//	          admission-pressure, breaker-churn); 503 on critical findings.
//	/tenants  JSON per-tenant stats snapshot, including each tenant's last
//	          critical-path window and a one-line round-over-round report.
//	/report   Ranked differential run report for one tenant's last two
//	          traffic rounds (?tenant=batch), with analyzer findings.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"flexio/internal/analyze"
	"flexio/internal/hpio"
	"flexio/internal/pfs"
	"flexio/internal/report"
	"flexio/internal/sim"
	"flexio/internal/tenant"
)

func main() {
	addr := flag.String("addr", ":9090", "address to serve /metrics, /healthz, and /tenants on")
	chaosMode := flag.Bool("chaos", false, "inject hard sieve faults under the 'batch' tenant (noisy-neighbor demo)")
	integrityOn := flag.Bool("integrity", false, "arm the checksummed datapath: per-stripe-block checksums, quarantine, and the tenant-aware background scrubber (scrub stats land in /metrics and /tenants)")
	corruptMode := flag.Bool("corrupt", false, "silently flip stored bits under the 'batch' tenant's namespace (implies -integrity): quarantine and scrub metrics move while the service stays up")
	period := flag.Duration("period", 500*time.Millisecond, "wall-clock interval between traffic rounds (each round is one logical tick)")
	once := flag.Bool("once", false, "run one traffic burst, write the exposition to stdout, and exit")
	rounds := flag.Int("rounds", 8, "traffic rounds for -once mode")
	flag.Parse()

	if err := run(*addr, *chaosMode, *integrityOn || *corruptMode, *corruptMode, *period, *once, *rounds); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// demo tiles: the batch tenant moves several times the bytes of the
// interactive tenants.
var (
	batchTile = hpio.Pattern{Ranks: 4, RegionSize: 256, RegionCount: 16, Spacing: 256}
	smallTile = hpio.Pattern{Ranks: 2, RegionSize: 64, RegionCount: 8, Spacing: 64}
)

func run(addr string, chaosMode, integrityOn, corruptMode bool, period time.Duration, once bool, rounds int) error {
	cfg := sim.DefaultConfig()
	fs := pfs.NewFileSystem(cfg)
	if integrityOn {
		fs.EnableIntegrity(10, 64)
	}
	if chaosMode || corruptMode {
		sched := pfs.NewFaultSchedule(1)
		if chaosMode {
			sched.Add(pfs.Rule{Name: "batch/batch.dat", Kind: "write", Class: pfs.ClassIO,
				Match: func(op pfs.Op) bool { return op.Sieve }})
		}
		if corruptMode {
			// A trickle of silent media corruption confined to the batch
			// tenant's namespace: the per-stripe-block checksums catch each
			// flip on the next access, and the service tick's scrubber
			// drains whatever the inline ring repair missed.
			sched.AddFlip(pfs.FlipRule{Kind: "bitflip", Name: "batch/batch.dat", Prob: 0.2})
		}
		fs.SetFaultSchedule(sched)
	}
	svc, err := tenant.NewService(tenant.Config{FS: fs, Sim: cfg, ScrubPerTick: 4})
	if err != nil {
		return err
	}
	// Three envelopes: an unlimited batch tenant, a token-limited
	// interactive tenant with a short queue, and a light best-effort one.
	if _, err := svc.AddTenant("batch", tenant.Limits{Weight: 1}); err != nil {
		return err
	}
	interactive := tenant.Limits{Tokens: 2, Refill: 1, QueueDepth: 2, DeadlineTicks: 4, Weight: 4}
	if _, err := svc.AddTenant("interactive", interactive); err != nil {
		return err
	}
	if _, err := svc.AddTenant("best-effort", tenant.Limits{Tokens: 1, Refill: -1}); err != nil {
		return err
	}

	tenantNames := []string{"batch", "interactive", "best-effort"}
	rp := newReporter(tenantNames)

	// trafficRound submits one job per tenant and advances logical time.
	// Admission rejections and collective aborts are expected service
	// behavior here, not process errors: they show up in the exposition.
	// With -corrupt the batch file's stored bytes are flipped on purpose,
	// so the byte-compare verify would flag every round; the integrity
	// layer (checksums, quarantine, scrubber) is the detector there.
	round := 0
	trafficRound := func(engine string) {
		svc.Submit("batch", tenant.Job{
			File: "batch/batch.dat", Engine: engine, Write: true,
			Pattern: batchTile, CollBuf: 1024, Verify: !corruptMode, Trace: true,
		})
		svc.Submit("interactive", tenant.Job{
			File: "interactive/interactive.dat", Engine: engine, Write: true,
			Pattern: smallTile, CollBuf: 1024, Verify: true, Trace: true,
		})
		svc.Submit("best-effort", tenant.Job{
			File: "best-effort/best-effort.dat", Engine: engine, Write: true,
			Pattern: smallTile, CollBuf: 1024, Verify: true, Trace: true,
		})
		svc.Tick()
		round++
		rp.capture(svc, round)
	}

	engines := []string{"core-nb", "core-a2a", "twophase"}

	if once {
		for r := 0; r < rounds; r++ {
			trafficRound(engines[r%len(engines)])
		}
		return svc.WriteProm(os.Stdout)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := svc.WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, _ *http.Request) {
		type stats struct {
			tenant.Stats
			Shed        int64   `json:"shed"`
			CritPathSec float64 `json:"critpath_seconds"`
			LastReport  string  `json:"last_report,omitempty"`
		}
		sts := svc.TenantStats()
		out := make([]stats, len(sts))
		for i, st := range sts {
			out[i] = stats{st, st.Shed(), st.CritPathSec, rp.top(st.Name)}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("tenant")
		if name == "" {
			name = tenantNames[0]
		}
		rep := rp.diff(name)
		if rep == nil {
			http.Error(w, fmt.Sprintf("report: tenant %q has fewer than two completed rounds (tenants: %v)",
				name, tenantNames), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, rep.Format())
		if fs := analyze.ReportFindings(rep); len(fs) > 0 {
			fmt.Fprint(w, analyze.FormatReport(fs))
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		findings := analyze.TenantFindings(usage(svc))
		status, code := "ok", http.StatusOK
		for _, f := range findings {
			if f.Severity == analyze.SevCritical {
				status, code = "unhealthy", http.StatusServiceUnavailable
				break
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(struct {
			Status   string            `json:"status"`
			Findings []analyze.Finding `json:"findings"`
		}{status, findings})
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Traffic loop: one round per period until shutdown.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(period)
		defer tick.Stop()
		r := 0
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				trafficRound(engines[r%len(engines)])
				r++
			}
		}
	}()

	srv := &http.Server{
		Addr:         addr,
		Handler:      mux,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	fmt.Printf("flexio-serve: /metrics, /healthz, /tenants on %s (chaos=%v integrity=%v corrupt=%v)\n",
		addr, chaosMode, integrityOn, corruptMode)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		stop()
		wg.Wait()
		return err
	case <-ctx.Done():
	}
	fmt.Println("flexio-serve: signal received, draining")
	wg.Wait()
	svc.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// reporter keeps each tenant's two most recent post-round metric snapshots
// so the /report endpoint can diff "this round vs the previous one" at any
// moment without holding the service lock during HTTP handling.
type reporter struct {
	mu    sync.Mutex
	names []string
	prev  map[string]*report.Source
	cur   map[string]*report.Source
}

func newReporter(names []string) *reporter {
	return &reporter{
		names: names,
		prev:  make(map[string]*report.Source),
		cur:   make(map[string]*report.Source),
	}
}

// capture snapshots every tenant's last-job metrics after a traffic round.
// Tenants whose job was shed this round keep their previous snapshot.
func (rp *reporter) capture(svc *tenant.Service, round int) {
	for _, name := range rp.names {
		met, _ := svc.LastArtifacts(name)
		if met == nil {
			continue
		}
		src, err := report.FromSet(fmt.Sprintf("%s@round%d", name, round), met)
		if err != nil {
			continue
		}
		rp.mu.Lock()
		if old := rp.cur[name]; old != nil {
			rp.prev[name] = old
		}
		rp.cur[name] = src
		rp.mu.Unlock()
	}
}

// diff returns the tenant's round-over-round report, or nil before two
// rounds have completed.
func (rp *reporter) diff(name string) *report.Report {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	old, cur := rp.prev[name], rp.cur[name]
	if old == nil || cur == nil {
		return nil
	}
	return report.Diff(old, cur)
}

// top returns the report's one-line headline for the /tenants snapshot.
func (rp *reporter) top(name string) string {
	if rep := rp.diff(name); rep != nil {
		return rep.Top()
	}
	return ""
}

// usage converts the service's stats and breaker trips into the analyzer's
// input.
func usage(svc *tenant.Service) []analyze.TenantUsage {
	var trips int64
	for _, b := range svc.Breakers().Status() {
		trips += b.Trips
	}
	sts := svc.TenantStats()
	us := make([]analyze.TenantUsage, 0, len(sts))
	for _, st := range sts {
		us = append(us, analyze.TenantUsage{
			Name: st.Name, Ops: st.Ops, Bytes: st.Bytes,
			Shed: st.Shed(), Rejected: st.Rejected - st.Shed(),
			Degraded: st.Degraded, Trips: trips,
		})
	}
	return us
}
