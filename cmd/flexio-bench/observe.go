package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flexio/internal/analyze"
	"flexio/internal/metrics"
)

// runObservability drives the observability surfaces: it runs the
// diagnostic demo workload (deliberately misaligned realms, sparse
// sieve-hostile accesses, one overloaded aggregator), then prints the
// analyzer report (-analyze), writes the Prometheus text exposition
// (-metrics-out), and/or serves /metrics and /healthz (-serve).
func runObservability(doAnalyze bool, metricsOut, serveAddr string) error {
	met, err := analyze.Demo()
	if err != nil {
		return fmt.Errorf("analyze demo workload: %w", err)
	}
	findings := analyze.Analyze(met.Dump(true))

	if doAnalyze {
		fmt.Print(analyze.FormatReport(findings))
	}
	if metricsOut != "" {
		if err := writeMetricsFile(met, metricsOut); err != nil {
			return err
		}
		fmt.Printf("wrote Prometheus exposition to %s\n", metricsOut)
	}
	if serveAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := met.WriteProm(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			status, code := "ok", http.StatusOK
			for _, f := range findings {
				if f.Severity == analyze.SevCritical {
					status, code = "unhealthy", http.StatusServiceUnavailable
					break
				}
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(struct {
				Status   string            `json:"status"`
				Findings []analyze.Finding `json:"findings"`
			}{status, findings})
		})
		fmt.Printf("serving /metrics and /healthz on %s\n", serveAddr)
		return serveUntilSignal(serveAddr, mux)
	}
	return nil
}

// serveUntilSignal runs an HTTP server with read/write timeouts until
// SIGINT or SIGTERM, then drains in-flight requests before returning.
func serveUntilSignal(addr string, handler http.Handler) error {
	srv := &http.Server{
		Addr:         addr,
		Handler:      handler,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// writeMetricsFile writes a Set's Prometheus text exposition to path.
func writeMetricsFile(met *metrics.Set, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := met.WriteProm(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
