package main

import (
	"fmt"

	"flexio/internal/analyze"
	"flexio/internal/benchsuite"
	"flexio/internal/report"
)

// runBenchSuite measures the tracked benchmark matrix and either records
// the results under a label in a JSON trajectory (-benchjson) or gates
// against the committed "after" entries (-benchcheck). Both at once is
// allowed: CI records its fresh numbers as an artifact and still fails on
// regression.
// runPreaggSuite handles the two-level-exchange trajectory (BENCH_PR8.json).
// With jsonPath set it measures the matrix twice — flat exchange under
// "before", pre-aggregation plus NodeLocal realms under "after" — and saves
// both labels. With checkPath set it measures the pre-aggregated matrix and
// fails if any row's inter-node shuffle bytes per op regressed more than
// 10% against the committed "after" entries.
func runPreaggSuite(jsonPath, checkPath string) error {
	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	if jsonPath != "" {
		before, err := benchsuite.MeasureAllPreagg(false, logf)
		if err != nil {
			return err
		}
		after, err := benchsuite.MeasureAllPreagg(true, logf)
		if err != nil {
			return err
		}
		f, err := benchsuite.Load(jsonPath)
		if err != nil {
			return err
		}
		f.Set("before", before)
		f.Set("after", after)
		if err := f.Save(jsonPath); err != nil {
			return err
		}
		for i := range after {
			if b, a := before[i].InterNodeBytesPerOp, after[i].InterNodeBytesPerOp; a > 0 {
				fmt.Printf("%-34s internode bytes/op %12.0f -> %12.0f (%.1fx reduction)\n",
					after[i].Name, b, a, b/a)
			}
		}
		fmt.Printf("recorded %d before/after row pairs in %s\n", len(after), jsonPath)
	}
	if checkPath != "" {
		fresh, err := benchsuite.MeasureAllPreagg(true, logf)
		if err != nil {
			return err
		}
		f, err := benchsuite.Load(checkPath)
		if err != nil {
			return err
		}
		baseline := f.Results["after"]
		if len(baseline) == 0 {
			return fmt.Errorf("preaggcheck: %s has no 'after' entries to regress against", checkPath)
		}
		problems := benchsuite.ComparePreagg(baseline, fresh, 0.10, 4096)
		for _, p := range problems {
			fmt.Printf("preaggcheck: %s\n", p)
		}
		if len(problems) > 0 {
			return fmt.Errorf("preaggcheck: %d regression(s) against %s", len(problems), checkPath)
		}
		fmt.Printf("preaggcheck: all %d pre-aggregated rows within 10%% of the committed internode bytes\n", len(fresh))
	}
	return nil
}

func runBenchSuite(jsonPath, label, checkPath string) error {
	results, err := benchsuite.MeasureAll(func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		return err
	}
	if jsonPath != "" {
		f, err := benchsuite.Load(jsonPath)
		if err != nil {
			return err
		}
		f.Set(label, results)
		if err := f.Save(jsonPath); err != nil {
			return err
		}
		fmt.Printf("recorded %d benchmark results under %q in %s\n", len(results), label, jsonPath)
	}
	if checkPath != "" {
		f, err := benchsuite.Load(checkPath)
		if err != nil {
			return err
		}
		baseline := f.Results["after"]
		if len(baseline) == 0 {
			return fmt.Errorf("benchcheck: %s has no 'after' entries to regress against", checkPath)
		}
		problems := benchsuite.Compare(baseline, results, 0.20, 8)
		for _, p := range problems {
			fmt.Printf("benchcheck: %s\n", p)
		}
		if len(problems) > 0 {
			return fmt.Errorf("benchcheck: %d regression(s) against %s", len(problems), checkPath)
		}
		fmt.Printf("benchcheck: all %d configurations within 20%% of the committed baseline\n", len(results))
	}
	return nil
}

// runIntegritySuite handles the checksummed-datapath trajectory
// (BENCH_PR10.json). It measures the Default matrix with wire and at-rest
// integrity armed; with jsonPath set the rows are saved under "after", and
// with checkPath set (the clean BENCH_PR3.json) the run fails if any row
// exceeds its clean counterpart's allocs/op budget or costs more than 5%
// extra virtual time.
func runIntegritySuite(jsonPath, checkPath string) error {
	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	fresh, err := benchsuite.MeasureAllIntegrity(logf)
	if err != nil {
		return err
	}
	if jsonPath != "" {
		f, err := benchsuite.Load(jsonPath)
		if err != nil {
			return err
		}
		f.Set("after", fresh)
		if err := f.Save(jsonPath); err != nil {
			return err
		}
		fmt.Printf("recorded %d checksum-on rows in %s\n", len(fresh), jsonPath)
	}
	if checkPath != "" {
		f, err := benchsuite.Load(checkPath)
		if err != nil {
			return err
		}
		clean := f.Results["after"]
		if len(clean) == 0 {
			return fmt.Errorf("integritycheck: %s has no 'after' entries to budget against", checkPath)
		}
		problems := benchsuite.CompareIntegrity(clean, fresh, 0.05, 8)
		for _, p := range problems {
			fmt.Printf("integritycheck: %s\n", p)
		}
		if len(problems) > 0 {
			return fmt.Errorf("integritycheck: %d violation(s) against %s", len(problems), checkPath)
		}
		fmt.Printf("integritycheck: all %d checksum-on rows within the clean allocation budget and 5%% virtual time\n", len(fresh))
	}
	return nil
}

// runTelemetrySuite handles the scale-ready-telemetry trajectory
// (BENCH_PR9.json). With jsonPath set it measures the telemetry matrix
// (sampled tracing + per-node rollups) and saves it under "after". With
// checkPath set it measures the matrix and fails if any row's sampled-rank
// count drifted or its rollup exposition grew more than 10% against the
// committed "after" entries.
func runTelemetrySuite(jsonPath, checkPath string) error {
	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	if jsonPath != "" {
		results, err := benchsuite.MeasureAllTelemetry(logf)
		if err != nil {
			return err
		}
		f, err := benchsuite.Load(jsonPath)
		if err != nil {
			return err
		}
		f.Set("after", results)
		if err := f.Save(jsonPath); err != nil {
			return err
		}
		fmt.Printf("recorded %d telemetry rows in %s\n", len(results), jsonPath)
	}
	if checkPath != "" {
		fresh, err := benchsuite.MeasureAllTelemetry(logf)
		if err != nil {
			return err
		}
		f, err := benchsuite.Load(checkPath)
		if err != nil {
			return err
		}
		baseline := f.Results["after"]
		if len(baseline) == 0 {
			return fmt.Errorf("telemetrycheck: %s has no 'after' entries to regress against", checkPath)
		}
		problems := benchsuite.CompareTelemetry(baseline, fresh, 0.10, 256)
		for _, p := range problems {
			fmt.Printf("telemetrycheck: %s\n", p)
		}
		if len(problems) > 0 {
			return fmt.Errorf("telemetrycheck: %d regression(s) against %s", len(problems), checkPath)
		}
		fmt.Printf("telemetrycheck: all %d rows hold their sampling and rollup budgets\n", len(fresh))
	}
	return nil
}

// runReport diffs two run artifacts (benchsuite trajectories with an
// optional #label suffix, flight-recorder dumps, or Prometheus
// expositions) and prints the ranked differential report plus the
// analyzer's findings over it.
func runReport(oldSpec, newSpec string) error {
	old, err := report.LoadFile(oldSpec)
	if err != nil {
		return err
	}
	fresh, err := report.LoadFile(newSpec)
	if err != nil {
		return err
	}
	rep := report.Diff(old, fresh)
	fmt.Println(rep.Format())
	if fs := analyze.ReportFindings(rep); len(fs) > 0 {
		fmt.Println()
		fmt.Print(analyze.FormatReport(fs))
	}
	return nil
}
