package main

import (
	"fmt"

	"flexio/internal/benchsuite"
)

// runBenchSuite measures the tracked benchmark matrix and either records
// the results under a label in a JSON trajectory (-benchjson) or gates
// against the committed "after" entries (-benchcheck). Both at once is
// allowed: CI records its fresh numbers as an artifact and still fails on
// regression.
func runBenchSuite(jsonPath, label, checkPath string) error {
	results, err := benchsuite.MeasureAll(func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		return err
	}
	if jsonPath != "" {
		f, err := benchsuite.Load(jsonPath)
		if err != nil {
			return err
		}
		f.Set(label, results)
		if err := f.Save(jsonPath); err != nil {
			return err
		}
		fmt.Printf("recorded %d benchmark results under %q in %s\n", len(results), label, jsonPath)
	}
	if checkPath != "" {
		f, err := benchsuite.Load(checkPath)
		if err != nil {
			return err
		}
		baseline := f.Results["after"]
		if len(baseline) == 0 {
			return fmt.Errorf("benchcheck: %s has no 'after' entries to regress against", checkPath)
		}
		problems := benchsuite.Compare(baseline, results, 0.20, 8)
		for _, p := range problems {
			fmt.Printf("benchcheck: %s\n", p)
		}
		if len(problems) > 0 {
			return fmt.Errorf("benchcheck: %d regression(s) against %s", len(problems), checkPath)
		}
		fmt.Printf("benchcheck: all %d configurations within 20%% of the committed baseline\n", len(results))
	}
	return nil
}
