// Command flexio-bench regenerates the paper's evaluation figures (4, 5,
// and 7) and the repository's ablation studies (A1–A5) as text tables.
//
// Usage:
//
//	flexio-bench -fig 4            # Figure 4 at paper scale (slow)
//	flexio-bench -fig 5 -small    # Figure 5 at reduced scale
//	flexio-bench -fig all -small  # everything, quickly
//
// At paper scale Figure 4 writes up to 1 GB per point and Figure 5 writes
// a 1 GB file per point; expect minutes of wall time and a few GB of RAM.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flexio/internal/analyze"
	"flexio/internal/chaos"
	"flexio/internal/critpath"
	"flexio/internal/experiments"
	"flexio/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 4, 5, 7, A1, A2, A3, A4, A5, or all")
	small := flag.Bool("small", false, "run at reduced scale (fast, shapes preserved)")
	verify := flag.Bool("verify", false, "verify file contents against references at every point")
	fig5file := flag.Int64("fig5file", 1<<30, "figure 5 file size in bytes")
	fig5every := flag.Int("fig5every", 1, "keep every k-th figure 5 fraction point")
	fig4aggs := flag.Int("fig4aggs", 0, "restrict figure 4 to one aggregator count (0 = all panels)")
	tracePath := flag.String("trace", "", "write the last experiment's Chrome trace JSON (Perfetto-loadable) to this file")
	breakdown := flag.Bool("breakdown", false, "print the last experiment's per-phase/per-round trace breakdown")
	critRun := flag.Bool("critpath", false, "print the last experiment's critical-path profile (virtual-time causal DAG)")
	chaosRun := flag.Bool("chaos", false, "run the deterministic fault-injection scenario matrix instead of the figures")
	rankChaosRun := flag.Bool("rankchaos", false, "run the rank-failure/failover scenario matrix instead of the figures")
	tenantChaosRun := flag.Bool("tenantchaos", false, "run the multi-tenant interference scenario matrix instead of the figures")
	corruptRun := flag.Bool("corrupt", false, "run the data-corruption scenario matrix (wire/at-rest/torn × repair/abort) instead of the figures")
	integrityJSON := flag.String("integrityjson", "", "run the tracked benchmark matrix with the checksummed datapath enabled and record the rows under 'after' in this JSON trajectory file")
	integrityCheck := flag.String("integritycheck", "", "run the tracked benchmark matrix with the checksummed datapath enabled and fail if allocs/op exceed the clean 'after' entries of this JSON file (BENCH_PR3.json) or virtual time regresses >5%")
	chaosTraces := flag.String("chaostraces", "", "directory to write chaos scenarios' Chrome traces and flight dumps into")
	benchJSON := flag.String("benchjson", "", "run the tracked benchmark matrix and merge results into this JSON trajectory file")
	benchLabel := flag.String("benchlabel", "after", "label to store -benchjson results under (e.g. before, after, ci)")
	benchCheck := flag.String("benchcheck", "", "run the tracked benchmark matrix and fail if allocs/op regress >20% against the 'after' entries of this JSON file")
	preaggJSON := flag.String("preaggjson", "", "run the two-level-exchange matrix with pre-aggregation off and on and record the 'before'/'after' labels in this JSON trajectory file")
	preaggCheck := flag.String("preaggcheck", "", "run the pre-aggregated two-level-exchange matrix and fail if internode bytes/op regress >10% against the 'after' entries of this JSON file")
	telemetryJSON := flag.String("telemetryjson", "", "run the scale-ready-telemetry matrix (sampled tracing + per-node rollups) and record the 'after' label in this JSON trajectory file")
	telemetryCheck := flag.String("telemetrycheck", "", "run the scale-ready-telemetry matrix and fail if sampled-rank counts drift or rollup exposition bytes regress >10% against the 'after' entries of this JSON file")
	reportRun := flag.Bool("report", false, "diff two run artifacts (positional args: old new; trajectories take a #label suffix, flight dumps and Prometheus expositions are sniffed) and print the ranked differential report")
	nodes := flag.Int("nodes", 0, "ranks per simulated node for the figure harness runs (0 = one rank per node)")
	analyzeRun := flag.Bool("analyze", false, "run the diagnostic demo workload and print the collective-I/O health analyzer report")
	metricsOut := flag.String("metrics-out", "", "run the diagnostic demo workload and write its Prometheus text exposition to this file")
	serveAddr := flag.String("serve", "", "run the diagnostic demo workload and serve /metrics and /healthz on this address (e.g. :9090)")
	flag.Parse()

	experiments.NodeRanks = *nodes

	if *analyzeRun || *metricsOut != "" || *serveAddr != "" {
		if err := runObservability(*analyzeRun, *metricsOut, *serveAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" || *benchCheck != "" {
		if err := runBenchSuite(*benchJSON, *benchLabel, *benchCheck); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *preaggJSON != "" || *preaggCheck != "" {
		if err := runPreaggSuite(*preaggJSON, *preaggCheck); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *integrityJSON != "" || *integrityCheck != "" {
		if err := runIntegritySuite(*integrityJSON, *integrityCheck); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *telemetryJSON != "" || *telemetryCheck != "" {
		if err := runTelemetrySuite(*telemetryJSON, *telemetryCheck); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *reportRun {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "report: need exactly two artifacts: flexio-bench -report old.json new.json")
			os.Exit(2)
		}
		if err := runReport(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *chaosRun {
		logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
		if failures := chaos.Soak(chaos.Matrix(), *chaosTraces, logf); failures > 0 {
			fmt.Fprintf(os.Stderr, "chaos: %d scenario(s) violated invariants\n", failures)
			os.Exit(1)
		}
		fmt.Println("chaos: all scenarios held their invariants")
		return
	}

	if *rankChaosRun {
		logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
		if failures := chaos.RankSoak(chaos.RankMatrix(), *chaosTraces, logf); failures > 0 {
			fmt.Fprintf(os.Stderr, "rankchaos: %d scenario(s) violated invariants\n", failures)
			os.Exit(1)
		}
		fmt.Println("rankchaos: all scenarios recovered byte-identically")
		return
	}

	if *tenantChaosRun {
		logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
		if failures := chaos.TenantSoak(chaos.TenantMatrix(), *chaosTraces, logf); failures > 0 {
			fmt.Fprintf(os.Stderr, "tenantchaos: %d scenario(s) violated invariants\n", failures)
			os.Exit(1)
		}
		fmt.Println("tenantchaos: all scenarios held their invariants")
		return
	}

	if *corruptRun {
		logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
		if failures := chaos.CorruptSoak(chaos.CorruptMatrix(), *chaosTraces, logf); failures > 0 {
			fmt.Fprintf(os.Stderr, "corrupt: %d scenario(s) violated invariants\n", failures)
			os.Exit(1)
		}
		fmt.Println("corrupt: every injected flip was repaired or aborted uniformly; no silent corruption")
		return
	}

	if *tracePath != "" || *breakdown || *critRun {
		experiments.TraceCapacity = trace.DefaultCapacity
	}

	want := strings.ToLower(*fig)
	run := func(name string) bool { return want == "all" || want == strings.ToLower(name) }
	failed := false

	emit := func(name string, tables []experiments.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failed = true
			return
		}
		for _, t := range tables {
			fmt.Println(t.Format())
		}
	}

	if run("4") {
		p := experiments.DefaultFig4()
		if *small {
			p = p.Scale(16, 256)
		}
		if *fig4aggs > 0 {
			p.AggCounts = []int{*fig4aggs}
		}
		p.Verify = *verify
		tables, err := experiments.Fig4(p)
		emit("fig4", tables, err)
	}
	if run("5") {
		p := experiments.DefaultFig5()
		p = p.Scale(*fig5file, *fig5every)
		if *small {
			p = p.Scale(64<<20, 4)
			p.Ranks = 8
		}
		p.Verify = *verify
		tables, err := experiments.Fig5(p)
		emit("fig5", tables, err)
	}
	if run("7") {
		p := experiments.DefaultFig7()
		if *small {
			p = p.Scale(512, 8, []int{16, 32})
		}
		p.Verify = *verify
		tables, err := experiments.Fig7(p)
		emit("fig7", tables, err)
	}

	ab := experiments.DefaultAblation()
	if *small {
		ab.Ranks = 8
		ab.RegionCount = 512
	}
	if run("A1") {
		tables, err := experiments.AblationExchange(ab)
		emit("A1", tables, err)
	}
	if run("A2") {
		tables, err := experiments.AblationRepresentation(ab)
		emit("A2", tables, err)
	}
	if run("A3") {
		tables, err := experiments.AblationRealms(ab)
		emit("A3", tables, err)
	}
	if run("A4") {
		tables, err := experiments.AblationComm(ab)
		emit("A4", tables, err)
	}
	if run("A5") {
		tables, err := experiments.AblationHeap(ab)
		emit("A5", tables, err)
	}

	if *tracePath != "" {
		if experiments.LastTrace == nil {
			fmt.Fprintln(os.Stderr, "trace: no experiment ran, nothing to export")
			failed = true
		} else if err := experiments.LastTrace.WriteChromeTraceFile(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			failed = true
		} else {
			fmt.Printf("wrote Chrome trace (%d events, %d ranks) to %s\n",
				experiments.LastTrace.Events(), experiments.LastTrace.Ranks(), *tracePath)
		}
	}
	if *breakdown && experiments.LastTrace != nil {
		fmt.Println(experiments.LastTrace.Breakdown().Format(experiments.LastStats))
		fmt.Println()
		fmt.Println(experiments.LastStats.Table())
	}
	if *critRun {
		if experiments.LastTrace == nil {
			fmt.Fprintln(os.Stderr, "critpath: no experiment ran, nothing to profile")
			failed = true
		} else {
			rep := critpath.Analyze(experiments.LastTrace)
			fmt.Println(rep.Format())
			if fs := analyze.TraceFindings(experiments.LastTrace, rep); len(fs) > 0 {
				fmt.Print(analyze.FormatReport(fs))
			}
		}
	}

	if failed {
		os.Exit(1)
	}
}
