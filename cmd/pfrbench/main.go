// Command pfrbench runs the persistent-file-realm time-step workload
// (paper §6.4 / Figure 7) for one configuration, reporting bandwidth and
// the lock/cache counters that explain it.
//
// Example:
//
//	pfrbench -clients 32 -pfr -align 2097152
//	pfrbench -clients 32            # baseline: no PFR, no alignment
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"flexio/internal/chaos"
	"flexio/internal/critpath"
	"flexio/internal/experiments"
	"flexio/internal/mpiio"
	"flexio/internal/stats"
	"flexio/internal/trace"
)

func main() {
	clients := flag.Int("clients", 32, "number of client processes (half act as aggregators)")
	elems := flag.Int64("elems", 100, "elements per data point")
	elemSize := flag.Int64("elemsize", 32, "element size in bytes")
	points := flag.Int64("points", 2048, "number of data points")
	steps := flag.Int("steps", 32, "time steps (one collective write each)")
	pfr := flag.Bool("pfr", false, "persistent file realms")
	align := flag.Int64("align", 0, "file realm alignment in bytes (0 = off; the paper uses the 2MB stripe)")
	nodes := flag.Int("nodes", 0, "ranks per simulated node (0 = one rank per node)")
	verify := flag.Bool("verify", false, "verify the final file image")
	tracePath := flag.String("trace", "", "write the run's Chrome trace JSON (Perfetto-loadable) to this file")
	sampleK := flag.Int("sample", 0, "trace only the aggregators, node leaders, and this many reservoir-sampled member ranks (0 = trace every rank)")
	breakdown := flag.Bool("breakdown", false, "print the per-phase/per-round trace breakdown")
	critRun := flag.Bool("critpath", false, "print the run's critical-path profile (virtual-time causal DAG)")
	metricsOut := flag.String("metrics-out", "", "write the run's Prometheus text exposition to this file")
	rankSpec := flag.String("rankchaos", "", "run a rank-failure scenario \"fault:victim[:cbnodes]\" (e.g. crash-mid-rounds:1) on the core engine instead of the benchmark")
	rankSeed := flag.Int64("rankseed", 1, "rank-fault schedule seed for -rankchaos")
	corruptSpec := flag.String("corrupt", "", "run a data-corruption scenario \"plane[:abort|:repair][:pre]\" (plane: wire, atrest, torn; e.g. wire, atrest:abort) on the core engine instead of the benchmark")
	corruptSeed := flag.Int64("corruptseed", 1, "corruption schedule seed for -corrupt")
	flag.Parse()

	experiments.NodeRanks = *nodes
	experiments.SampleK = *sampleK

	if *corruptSpec != "" {
		s, err := chaos.ParseCorruptSpec("core-nb", true, *corruptSpec, *corruptSeed)
		if err != nil {
			log.Fatal(err)
		}
		out, verr := s.Run()
		if out != nil {
			fmt.Printf("%s: class %s, %d corruption(s) injected\n",
				s.Name(), mpiio.ClassName(out.Class), out.Injected)
			fmt.Printf("wire: %d mismatch(es), %d re-requested clean; at-rest: %d mismatch(es), %d quarantined, %d repaired, backlog %d\n",
				out.WireMismatch, out.WireRepaired,
				out.AtRest.Mismatches, out.AtRest.Quarantined, out.AtRest.Repairs, out.AtRest.Backlog)
			fmt.Printf("elapsed (virtual): %.3fms\n", float64(out.Elapsed)*1e3)
		}
		if verr != nil {
			log.Fatalf("corrupt: invariant violated: %v", verr)
		}
		fmt.Println("no silent corruption: every flip was repaired or aborted uniformly")
		return
	}

	if *rankSpec != "" {
		s, err := chaos.ParseRankSpec("core-nb", *rankSpec, *rankSeed)
		if err != nil {
			log.Fatal(err)
		}
		out, verr := s.Run()
		if out != nil {
			fmt.Printf("%s: abort class %s, dead ranks %v\n", s.Name(), mpiio.ClassName(out.AbortClass), out.Dead)
			fmt.Printf("deadline trips=%d failovers=%d rounds replayed=%d skipped=%d redeliveries=%d\n",
				out.DeadlineTrips, out.Failovers, out.Replayed, out.Skipped, out.Redelivered)
			fmt.Printf("elapsed (virtual): %.3fms\n", float64(out.Elapsed)*1e3)
		}
		if verr != nil {
			log.Fatalf("rankchaos: invariant violated: %v", verr)
		}
		fmt.Println("recovered byte-identically")
		return
	}

	if *tracePath != "" || *breakdown || *critRun {
		experiments.TraceCapacity = trace.DefaultCapacity
	}

	p := experiments.DefaultFig7()
	p.Clients = []int{*clients}
	p.ElemsPerPoint = *elems
	p.ElemSize = *elemSize
	p.Points = *points
	p.Steps = *steps
	p.Verify = *verify

	res, err := experiments.RunPFRConfig(p, *clients, *pfr, *align)
	if err != nil {
		log.Fatal(err)
	}
	total := p.Points * p.ElemsPerPoint * p.ElemSize * int64(p.Steps)
	fmt.Printf("clients=%d aggregators=%d points=%d elems=%d x %dB steps=%d pfr=%v align=%d\n",
		*clients, *clients/2, p.Points, p.ElemsPerPoint, p.ElemSize, p.Steps, *pfr, *align)
	fmt.Printf("data per step: %.2f MB   total: %.2f MB\n",
		float64(total)/float64(p.Steps)/1e6, float64(total)/1e6)
	fmt.Printf("elapsed (virtual): %v   bandwidth: %.2f MB/s\n", res.Elapsed, res.BandwidthMBs(total))

	agg := stats.Merge(res.World.Recorders()...)
	fmt.Printf("\nlock grants:      %d\n", agg.Counter(stats.CLockGrants))
	fmt.Printf("lock revocations: %d\n", agg.Counter(stats.CLockRevokes))
	fmt.Printf("stripe conflicts: %d\n", agg.Counter(stats.CStripeConflicts))
	fmt.Printf("cache hits:       %d\n", agg.Counter(stats.CCacheHits))
	fmt.Printf("cache flushes:    %d\n", agg.Counter(stats.CCacheFlushes))
	fmt.Printf("I/O calls:        %d\n", agg.Counter(stats.CIOCalls))
	fmt.Printf("bytes to storage: %.2f MB (vs %.2f MB useful)\n",
		float64(agg.Counter(stats.CBytesIO))/1e6, float64(total)/1e6)

	if *tracePath != "" {
		if err := experiments.LastTrace.WriteChromeTraceFile(*tracePath); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("\nwrote Chrome trace (%d events, %d ranks) to %s\n",
			experiments.LastTrace.Events(), experiments.LastTrace.Ranks(), *tracePath)
	}
	if *breakdown {
		fmt.Println()
		fmt.Println(experiments.LastTrace.Breakdown().Format(agg))
	}
	if *critRun {
		fmt.Println()
		fmt.Println(critpath.Analyze(experiments.LastTrace).Format())
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		if err := res.World.MetricsSet().WriteProm(f); err != nil {
			log.Fatalf("metrics: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("metrics: %v", err)
		}
		fmt.Printf("\nwrote Prometheus exposition to %s\n", *metricsOut)
	}
}
