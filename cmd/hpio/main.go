// Command hpio runs a single HPIO benchmark configuration through a chosen
// collective I/O implementation on the simulated cluster and reports
// bandwidth plus an MPE-style phase and counter breakdown.
//
// Example:
//
//	hpio -procs 64 -region 1024 -count 4096 -spacing 128 -aggs 16 -impl new
//	hpio -impl old -enumerate
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"flexio/internal/analyze"
	"flexio/internal/chaos"
	"flexio/internal/colltest"
	"flexio/internal/core"
	"flexio/internal/critpath"
	"flexio/internal/hpio"
	"flexio/internal/mpiio"
	"flexio/internal/realm"
	"flexio/internal/sim"
	"flexio/internal/stats"
	"flexio/internal/twophase"
)

func main() {
	procs := flag.Int("procs", 64, "number of MPI processes")
	region := flag.Int64("region", 1024, "region size in bytes")
	count := flag.Int64("count", 4096, "regions per process")
	spacing := flag.Int64("spacing", 128, "file spacing between regions in bytes")
	aggs := flag.Int("aggs", 0, "I/O aggregators (0 = all processes)")
	nodes := flag.Int("nodes", 0, "ranks per simulated node (0 = one rank per node)")
	preagg := flag.Bool("preagg", false, "node-local pre-aggregation (two-level exchange); with -impl new also installs the topology-aware node-local realms unless -cyclic is set")
	impl := flag.String("impl", "new", "collective implementation: new, old, or none")
	method := flag.String("method", "datasieve", "buffer access method for the new code: datasieve, naive, listio, conditional")
	comm := flag.String("comm", "nonblocking", "data exchange for the new code: nonblocking or alltoallw")
	align := flag.Int64("align", 0, "file realm alignment in bytes (0 = off)")
	pfr := flag.Bool("pfr", false, "persistent file realms")
	cyclic := flag.Int64("cyclic", 0, "cyclic realms with this block size (0 = even realms)")
	enumerate := flag.Bool("enumerate", false, "use an enumerated (vector) filetype instead of the succinct form")
	memContig := flag.Bool("memcontig", false, "contiguous memory layout")
	steps := flag.Int("steps", 1, "number of repeated collective writes")
	verify := flag.Bool("verify", true, "verify the file image")
	tracePath := flag.String("trace", "", "write the run's Chrome trace JSON (Perfetto-loadable) to this file")
	sampleK := flag.Int("sample", 0, "trace only the aggregators, node leaders, and this many reservoir-sampled member ranks (0 = trace every rank)")
	breakdown := flag.Bool("breakdown", false, "print the per-phase/per-round trace breakdown")
	critRun := flag.Bool("critpath", false, "print the run's critical-path profile (virtual-time causal DAG)")
	metricsOut := flag.String("metrics-out", "", "write the run's Prometheus text exposition to this file")
	analyzeRun := flag.Bool("analyze", false, "print the collective-I/O health analyzer report for the run")
	rankSpec := flag.String("rankchaos", "", "run a rank-failure scenario \"fault:victim[:cbnodes]\" (e.g. crash-mid-rounds:1) through the chosen impl/comm instead of the benchmark")
	rankSeed := flag.Int64("rankseed", 1, "rank-fault schedule seed for -rankchaos")
	corruptSpec := flag.String("corrupt", "", "run a data-corruption scenario \"plane[:abort|:repair][:pre]\" (plane: wire, atrest, torn; e.g. wire, atrest:abort) through the chosen impl/comm instead of the benchmark")
	corruptSeed := flag.Int64("corruptseed", 1, "corruption schedule seed for -corrupt")
	corruptRead := flag.Bool("corruptread", false, "inject the -corrupt scenario on the read-back direction instead of the write")
	flag.Parse()

	colltest.SampleK = *sampleK

	engine := "twophase"
	if *impl == "new" {
		engine = "core-nb"
		if *comm == "alltoallw" {
			engine = "core-a2a"
		}
	}

	if *corruptSpec != "" {
		s, err := chaos.ParseCorruptSpec(engine, !*corruptRead, *corruptSpec, *corruptSeed)
		if err != nil {
			log.Fatal(err)
		}
		if *preagg {
			s.Preagg = true
		}
		out, verr := s.Run()
		if out != nil {
			fmt.Printf("%s: class %s, %d corruption(s) injected\n",
				s.Name(), mpiio.ClassName(out.Class), out.Injected)
			fmt.Printf("wire: %d mismatch(es), %d re-requested clean; at-rest: %d mismatch(es), %d quarantined, %d repaired, backlog %d\n",
				out.WireMismatch, out.WireRepaired,
				out.AtRest.Mismatches, out.AtRest.Quarantined, out.AtRest.Repairs, out.AtRest.Backlog)
			fmt.Printf("elapsed (virtual): %.3fms\n", float64(out.Elapsed)*1e3)
			if *tracePath != "" && out.Trace != nil {
				if err := out.Trace.WriteChromeTraceFile(*tracePath); err != nil {
					log.Fatalf("trace: %v", err)
				}
				fmt.Printf("wrote Chrome trace to %s\n", *tracePath)
			}
			if *analyzeRun && out.Metrics != nil {
				fmt.Println()
				fmt.Print(analyze.FormatReport(analyze.Analyze(out.Metrics.Dump(true))))
			}
		}
		if verr != nil {
			log.Fatalf("corrupt: invariant violated: %v", verr)
		}
		fmt.Println("no silent corruption: every flip was repaired or aborted uniformly")
		return
	}

	if *rankSpec != "" {
		s, err := chaos.ParseRankSpec(engine, *rankSpec, *rankSeed)
		if err != nil {
			log.Fatal(err)
		}
		out, verr := s.Run()
		if out != nil {
			fmt.Printf("%s: abort class %s, dead ranks %v\n", s.Name(), mpiio.ClassName(out.AbortClass), out.Dead)
			fmt.Printf("deadline trips=%d failovers=%d rounds replayed=%d skipped=%d redeliveries=%d\n",
				out.DeadlineTrips, out.Failovers, out.Replayed, out.Skipped, out.Redelivered)
			fmt.Printf("elapsed (virtual): %.3fms\n", float64(out.Elapsed)*1e3)
			if *tracePath != "" && out.Trace != nil {
				if err := out.Trace.WriteChromeTraceFile(*tracePath); err != nil {
					log.Fatalf("trace: %v", err)
				}
				fmt.Printf("wrote Chrome trace to %s\n", *tracePath)
			}
			if *analyzeRun && out.Metrics != nil {
				fmt.Println()
				fmt.Print(analyze.FormatReport(analyze.Analyze(out.Metrics.Dump(true))))
			}
			if *critRun && out.Trace != nil {
				rep := critpath.Analyze(out.Trace)
				if out.Metrics != nil {
					rep.Note(out.Metrics)
				}
				fmt.Println()
				fmt.Println(rep.Format())
				if fs := analyze.TraceFindings(out.Trace, rep); len(fs) > 0 {
					fmt.Print(analyze.FormatReport(fs))
				}
			}
		}
		if verr != nil {
			log.Fatalf("rankchaos: invariant violated: %v", verr)
		}
		fmt.Println("recovered byte-identically")
		return
	}

	wl := hpio.Pattern{
		Ranks:        *procs,
		RegionSize:   *region,
		RegionCount:  *count,
		Spacing:      *spacing,
		MemNoncontig: !*memContig,
		MemGap:       *spacing,
		Enumerate:    *enumerate,
		NodeRanks:    *nodes,
	}
	if err := wl.Validate(); err != nil {
		log.Fatal(err)
	}

	var coll mpiio.Collective
	switch *impl {
	case "old":
		tw := twophase.New()
		if *preagg {
			tw.WithPreagg()
		}
		coll = tw
	case "none":
		coll = nil
	case "new":
		o := core.Options{Align: *align, Persistent: *pfr}
		switch *method {
		case "datasieve":
			o.Method = mpiio.DataSieve
		case "naive":
			o.Method = mpiio.Naive
		case "listio":
			o.Method = mpiio.ListIO
		case "conditional":
			o.Conditional = true
		default:
			log.Fatalf("unknown method %q", *method)
		}
		switch *comm {
		case "nonblocking":
			o.Comm = core.Nonblocking
		case "alltoallw":
			o.Comm = core.Alltoallw
		default:
			log.Fatalf("unknown comm %q", *comm)
		}
		o.Preagg = *preagg
		if *cyclic > 0 {
			o.Assigner = realm.Cyclic{Block: *cyclic}
		} else if *preagg {
			o.Assigner = realm.NodeLocal{}
		}
		coll = core.New(o)
	default:
		log.Fatalf("unknown impl %q", *impl)
	}

	cfg := sim.DefaultConfig()
	res, err := colltest.RunWriteSteps(cfg, wl, mpiio.Info{Collective: coll, CbNodes: *aggs}, *steps)
	if err != nil {
		log.Fatal(err)
	}
	if *verify {
		if err := colltest.VerifyImage(wl, res.Image); err != nil {
			log.Fatalf("verification failed: %v", err)
		}
	}

	total := wl.TotalBytes() * int64(*steps)
	name := "independent"
	if coll != nil {
		name = coll.Name()
	}
	fmt.Printf("%s\n", wl)
	fmt.Printf("impl=%s aggregators=%d steps=%d\n", name, *aggs, *steps)
	fmt.Printf("aggregate data: %.2f MB   elapsed (virtual): %v   bandwidth: %.2f MB/s\n",
		float64(total)/1e6, res.Elapsed, res.BandwidthMBs(total))

	agg := stats.Merge(res.World.Recorders()...)
	fmt.Println()
	fmt.Println(agg.Table())

	if *tracePath != "" {
		if err := res.Trace.WriteChromeTraceFile(*tracePath); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("\nwrote Chrome trace (%d events, %d ranks) to %s\n",
			res.Trace.Events(), res.Trace.Ranks(), *tracePath)
	}
	if *breakdown {
		fmt.Println()
		fmt.Println(res.Trace.Breakdown().Format(agg))
	}
	if *critRun {
		rep := critpath.Analyze(res.Trace)
		rep.Note(res.Metrics)
		fmt.Println()
		fmt.Println(rep.Format())
		if fs := analyze.TraceFindings(res.Trace, rep); len(fs) > 0 {
			fmt.Print(analyze.FormatReport(fs))
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		if err := res.Metrics.WriteProm(f); err != nil {
			log.Fatalf("metrics: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("metrics: %v", err)
		}
		fmt.Printf("\nwrote Prometheus exposition to %s\n", *metricsOut)
	}
	if *analyzeRun {
		fmt.Println()
		fmt.Print(analyze.FormatReport(analyze.Analyze(res.Metrics.Dump(true))))
	}
}
