// Package flexio's root benchmark harness: one benchmark per panel/series
// of the paper's evaluation figures (4, 5, 7) plus the ablations, each
// reporting the simulated bandwidth as a custom "virt-MB/s" metric, and
// CPU micro-benchmarks for the datatype engine that does the real work.
//
// The figure benchmarks run reduced-scale workloads so `go test -bench=.`
// finishes quickly; `cmd/flexio-bench` runs the paper's full parameter
// grids.
package flexio

import (
	"fmt"
	"testing"

	"flexio/internal/benchsuite"
	"flexio/internal/colltest"
	"flexio/internal/core"
	"flexio/internal/datatype"
	"flexio/internal/experiments"
	"flexio/internal/hpio"
	"flexio/internal/mpiio"
	"flexio/internal/sim"
	"flexio/internal/twophase"
)

// --- Tracked collective matrix: the BENCH_PR3.json trajectory ---
//
// One sub-benchmark per tracked configuration (2 engines x 2 comm
// strategies x read/write, plus the PFR steady-state points). Allocation
// reporting is on; `flexio-bench -benchjson` runs the same matrix and
// records it to the committed trajectory.

func BenchmarkCollectiveMatrix(b *testing.B) {
	for _, cfg := range benchsuite.Default() {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) { benchsuite.Run(b, cfg) })
	}
}

// benchWrite runs one collective write per iteration and reports the
// virtual bandwidth of the last run.
func benchWrite(b *testing.B, wl hpio.Pattern, info func() mpiio.Info) {
	b.Helper()
	var bw float64
	for i := 0; i < b.N; i++ {
		res, err := colltest.RunWrite(sim.DefaultConfig(), wl, info())
		if err != nil {
			b.Fatal(err)
		}
		bw = res.BandwidthMBs(wl.TotalBytes())
	}
	b.ReportMetric(bw, "virt-MB/s")
}

// --- Figure 4: HPIO noncontig/noncontig, three implementations ---

func BenchmarkFig4(b *testing.B) {
	for _, naggs := range []int{8, 16} {
		for _, rs := range []int64{8, 512, 4096} {
			for _, series := range []string{"new+struct", "new+vect", "old+vec"} {
				series := series
				wl := hpio.Pattern{
					Ranks: 16, RegionSize: rs, RegionCount: 256,
					Spacing: 128, MemNoncontig: true, MemGap: 128,
					Enumerate: series != "new+struct",
				}
				b.Run(fmt.Sprintf("aggs=%d/region=%d/%s", naggs, rs, series), func(b *testing.B) {
					benchWrite(b, wl, func() mpiio.Info {
						var coll mpiio.Collective
						if series == "old+vec" {
							coll = twophase.New()
						} else {
							coll = core.New(core.Options{})
						}
						return mpiio.Info{Collective: coll, CbNodes: naggs}
					})
				})
			}
		}
	}
}

// --- Figure 5: conditional data sieving, sieve vs naive per extent ---

func BenchmarkFig5(b *testing.B) {
	p := experiments.DefaultFig5().Scale(32<<20, 0)
	p.Ranks = 8
	for _, ext := range []int64{1 << 10, 16 << 10, 64 << 10} {
		for _, frac := range []int64{4, 16, 28} { // 12%, 50%, 88% of extent
			for _, method := range []struct {
				name string
				m    mpiio.Method
			}{{"datasieve", mpiio.DataSieve}, {"naive", mpiio.Naive}} {
				method := method
				ext, frac := ext, frac
				b.Run(fmt.Sprintf("extent=%d/region=%d%%/%s", ext, frac*100/32, method.name), func(b *testing.B) {
					q := p
					q.Extents = []int64{ext}
					q.Fractions = []int64{frac}
					var bw float64
					for i := 0; i < b.N; i++ {
						tables, err := experiments.Fig5(q)
						if err != nil {
							b.Fatal(err)
						}
						for _, s := range tables[0].Series {
							if s.Name == map[string]string{"datasieve": "Datasieve", "naive": "Naive"}[method.name] {
								bw = s.Points[0].Value
							}
						}
					}
					b.ReportMetric(bw, "virt-MB/s")
				})
			}
		}
	}
}

// --- Figure 7: PFRs and file realm alignment ---

func BenchmarkFig7(b *testing.B) {
	p := experiments.DefaultFig7().Scale(256, 4, nil)
	for _, clients := range []int{16, 32} {
		for _, cfg := range []struct {
			name  string
			pfr   bool
			align int64
		}{
			{"pfr-align", true, 2 << 20},
			{"pfr-only", true, 0},
			{"align-only", false, 2 << 20},
			{"neither", false, 0},
		} {
			cfg, clients := cfg, clients
			b.Run(fmt.Sprintf("clients=%d/%s", clients, cfg.name), func(b *testing.B) {
				total := p.Points * p.ElemsPerPoint * p.ElemSize * int64(p.Steps)
				var bw float64
				for i := 0; i < b.N; i++ {
					res, err := experiments.RunPFRConfig(p, clients, cfg.pfr, cfg.align)
					if err != nil {
						b.Fatal(err)
					}
					bw = res.BandwidthMBs(total)
				}
				b.ReportMetric(bw, "virt-MB/s")
			})
		}
	}
}

// --- Ablations ---

func BenchmarkAblationExchange(b *testing.B) {
	wl := hpio.Pattern{Ranks: 8, RegionSize: 64, RegionCount: 2048, Spacing: 128}
	for _, impl := range []string{"old", "new"} {
		impl := impl
		b.Run(impl, func(b *testing.B) {
			benchWrite(b, wl, func() mpiio.Info {
				if impl == "old" {
					return mpiio.Info{Collective: twophase.New()}
				}
				return mpiio.Info{Collective: core.New(core.Options{})}
			})
		})
	}
}

func BenchmarkAblationComm(b *testing.B) {
	wl := hpio.Pattern{Ranks: 16, RegionSize: 512, RegionCount: 512, Spacing: 128, MemNoncontig: true, MemGap: 128}
	for _, comm := range []core.CommStrategy{core.Nonblocking, core.Alltoallw} {
		comm := comm
		b.Run(comm.String(), func(b *testing.B) {
			benchWrite(b, wl, func() mpiio.Info {
				return mpiio.Info{Collective: core.New(core.Options{Comm: comm}), CbNodes: 8}
			})
		})
	}
}

func BenchmarkAblationHeapMerge(b *testing.B) {
	wl := hpio.Pattern{Ranks: 16, RegionSize: 64, RegionCount: 1024, Spacing: 128, Enumerate: true}
	for _, heap := range []bool{false, true} {
		heap := heap
		name := "per-agg-pass"
		if heap {
			name = "heap-merge"
		}
		b.Run(name, func(b *testing.B) {
			benchWrite(b, wl, func() mpiio.Info {
				return mpiio.Info{Collective: core.New(core.Options{HeapMerge: heap})}
			})
		})
	}
}

// --- Datatype engine micro-benchmarks (real CPU time) ---

func BenchmarkFlattenVector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v, err := datatype.Vector(1024, 2, 96, datatype.Bytes(16))
		if err != nil {
			b.Fatal(err)
		}
		_ = v.Flatten()
	}
}

func BenchmarkCursorWalk(b *testing.B) {
	t := datatype.Must(datatype.Resized(datatype.Bytes(64), 192))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := datatype.NewCursor(t, 0, 4096)
		for {
			if _, _, ok := c.Next(1 << 30); !ok {
				break
			}
		}
	}
}

func BenchmarkCursorSeekSuccinct(b *testing.B) {
	t := datatype.Must(datatype.Resized(datatype.Bytes(64), 192))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := datatype.NewCursor(t, 0, -1)
		for off := int64(0); off < 192*100000; off += 192 * 1000 {
			c.SeekOffset(off)
		}
	}
}

func BenchmarkFlatCodec(b *testing.B) {
	segs := make([]datatype.Seg, 256)
	for i := range segs {
		segs[i] = datatype.Seg{Off: int64(i) * 128, Len: 64}
	}
	t, err := datatype.FromSegs(segs, 0)
	if err != nil {
		b.Fatal(err)
	}
	f := datatype.FlatOf(t, 0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := f.Encode()
		if _, err := datatype.DecodeFlat(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPack(b *testing.B) {
	mt := datatype.Must(datatype.Resized(datatype.Bytes(256), 320))
	buf := make([]byte, 320*1024)
	b.SetBytes(256 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := datatype.Pack(buf, mt, 0, 1024); err != nil {
			b.Fatal(err)
		}
	}
}
