module flexio

go 1.22
